module Pool = Tpro_engine.Pool

type failure = {
  scenario : Scenario.t;
  message : string;
  shrunk : Scenario.t;
  shrunk_message : string;
}

let check_one s =
  match Oracle.check s with
  | Oracle.Pass -> None
  | Oracle.Fail m -> Some (s, m)

let shrink_failure (s, m) =
  let shrunk = Shrink.minimise Oracle.check s in
  let shrunk_message =
    match Oracle.check shrunk with Oracle.Fail m' -> m' | Oracle.Pass -> m
  in
  { scenario = s; message = m; shrunk; shrunk_message }

let map_trials ?pool f idxs =
  match pool with
  | Some p when Pool.size p > 1 -> Pool.map_chunks p ~chunk:8 f idxs
  | Some _ | None -> List.map f idxs

let run ?pool ?(mutant = Scenario.No_mutant) ~seed ~trials () =
  let f i = check_one (Scenario.generate ~seed ~mutant i) in
  map_trials ?pool f (List.init trials Fun.id)
  |> List.filter_map Fun.id |> List.map shrink_failure

(* First failing trial within [budget], scanning in blocks so a pool can
   be used without losing the early exit.  Returns how many trials were
   needed (the failing trial's 1-based position) with the shrunk
   counterexample. *)
let first_failure ?pool ?(mutant = Scenario.No_mutant) ~seed ~budget () =
  let block = match pool with Some p -> max 16 (4 * Pool.size p) | None -> 16 in
  let rec go start =
    if start >= budget then None
    else begin
      let n = min block (budget - start) in
      let f i = check_one (Scenario.generate ~seed ~mutant i) in
      let results = map_trials ?pool f (List.init n (fun i -> start + i)) in
      let rec first i = function
        | [] -> None
        | Some fail :: _ -> Some (start + i + 1, shrink_failure fail)
        | None :: rest -> first (i + 1) rest
      in
      match first 0 results with
      | Some r -> Some r
      | None -> go (start + n)
    end
  in
  go 0

let pp_failure ppf f =
  Format.fprintf ppf "@[<v>violation: %s@ scenario: %a@ shrunk to: %a@ \
                      shrunk violation: %s@]"
    f.message Scenario.pp f.scenario Scenario.pp f.shrunk f.shrunk_message
