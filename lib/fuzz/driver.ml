module Pool = Tpro_engine.Pool
module Supervisor = Tpro_engine.Supervisor
module Checkpoint = Tpro_engine.Checkpoint

type failure = {
  scenario : Scenario.t;
  message : string;
  shrunk : Scenario.t;
  shrunk_message : string;
}

let check_one s =
  match Oracle.check s with
  | Oracle.Pass -> None
  | Oracle.Fail m -> Some (s, m)

let shrink_failure (s, m) =
  let shrunk = Shrink.minimise Oracle.check s in
  let shrunk_message =
    match Oracle.check shrunk with Oracle.Fail m' -> m' | Oracle.Pass -> m
  in
  { scenario = s; message = m; shrunk; shrunk_message }

(* Chunk sizes are chosen by the pool's cost model per label: fuzz
   trials and topology trials have very different per-item costs, and
   both drift with trial size, so no static chunk fits. *)
let map_trials ?pool ?(label = "fuzz-trial") f idxs =
  match pool with
  | Some p when Pool.size p > 1 -> Pool.map_auto ~label p f idxs
  | Some _ | None -> List.map f idxs

let run ?pool ?(mutant = Scenario.No_mutant) ~seed ~trials () =
  let f i = check_one (Scenario.generate ~seed ~mutant i) in
  map_trials ?pool f (List.init trials Fun.id)
  |> List.filter_map Fun.id |> List.map shrink_failure

(* First failing trial within [budget], scanning in blocks so a pool can
   be used without losing the early exit.  Returns how many trials were
   needed (the failing trial's 1-based position) with the shrunk
   counterexample. *)
let first_failure ?pool ?(mutant = Scenario.No_mutant) ~seed ~budget () =
  let block = match pool with Some p -> max 16 (4 * Pool.size p) | None -> 16 in
  let rec go start =
    if start >= budget then None
    else begin
      let n = min block (budget - start) in
      let f i = check_one (Scenario.generate ~seed ~mutant i) in
      let results = map_trials ?pool f (List.init n (fun i -> start + i)) in
      let rec first i = function
        | [] -> None
        | Some fail :: _ -> Some (start + i + 1, shrink_failure fail)
        | None :: rest -> first (i + 1) rest
      in
      match first 0 results with
      | Some r -> Some r
      | None -> go (start + n)
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Supervised campaign: fault-tolerant fan-out with crash-safe
   checkpoint/resume.

   The checkpoint records only (seed, mutant, trials completed, failing
   trial indices): every scenario and every verdict regenerates
   deterministically from those integers, so a resumed campaign's final
   report — including the shrunk counterexamples — is bit-identical to
   an uninterrupted run.  Shrinking is deferred to the end of the
   campaign for the same reason: it re-derives from the recorded
   indices no matter how many times the process died in between. *)

type task_failure = { trial : int; error : Supervisor.task_error }

type campaign = {
  failures : failure list;
  trials : int;
  resumed_from : int;
  task_failures : task_failure list;
  notes : string list;
}

let state_payload ~seed ~mutant ~completed ~failing =
  String.concat "\n"
    ([
       "kind fuzz";
       "seed " ^ string_of_int seed;
       "mutant " ^ Scenario.mutant_to_string mutant;
       "done " ^ string_of_int completed;
     ]
    @ List.map (fun i -> "fail " ^ string_of_int i) failing)
  ^ "\n"

let parse_state ~seed ~mutant payload =
  let kind = ref None
  and pseed = ref None
  and pmutant = ref None
  and completed = ref None
  and fails = ref [] in
  let bad = ref None in
  List.iter
    (fun line ->
      if !bad = None && String.trim line <> "" then
        match String.index_opt line ' ' with
        | None -> bad := Some ("malformed state line: " ^ line)
        | Some i -> (
          let k = String.sub line 0 i
          and v = String.sub line (i + 1) (String.length line - i - 1) in
          let int_or k' =
            match int_of_string_opt v with
            | Some n -> Some n
            | None ->
              bad := Some (Printf.sprintf "state key `%s` wants an integer" k');
              None
          in
          match k with
          | "kind" -> kind := Some v
          | "seed" -> pseed := int_or k
          | "mutant" -> pmutant := Some v
          | "done" -> completed := int_or k
          | "fail" -> (
            match int_or k with
            | Some n -> fails := n :: !fails
            | None -> ())
          | _ -> bad := Some ("unknown state key `" ^ k ^ "`")))
    (String.split_on_char '\n' payload);
  match !bad with
  | Some msg -> Error msg
  | None ->
    if !kind <> Some "fuzz" then Error "checkpoint is not a fuzz campaign"
    else if !pseed <> Some seed then
      Error "checkpoint was written for a different seed"
    else if !pmutant <> Some (Scenario.mutant_to_string mutant) then
      Error "checkpoint was written for a different mutant"
    else
      match !completed with
      | None -> Error "checkpoint has no `done` count"
      | Some d -> Ok (d, List.rev !fails)

let campaign ~sup ?(mutant = Scenario.No_mutant) ?checkpoint
    ?(checkpoint_every = 200) ?(resume = false) ~seed ~trials () =
  let notes = ref [] in
  let note msg = notes := msg :: !notes in
  let start, failing0 =
    match (resume, checkpoint) with
    | true, Some path -> (
      match Checkpoint.load ~path with
      | Error (Checkpoint.Io msg) ->
        note
          (Printf.sprintf "no checkpoint to resume (%s); starting from scratch"
             msg);
        (0, [])
      | Error e ->
        note
          (Printf.sprintf
             "checkpoint rejected (%s); restarting campaign from scratch"
             (Checkpoint.error_to_string e));
        (0, [])
      | Ok payload -> (
        match parse_state ~seed ~mutant payload with
        | Error msg ->
          note
            (Printf.sprintf
               "checkpoint rejected (%s); restarting campaign from scratch"
               msg);
          (0, [])
        | Ok (d, _) when d > trials ->
          note
            (Printf.sprintf
               "checkpoint covers %d trials but only %d were requested; \
                restarting campaign from scratch"
               d trials);
          (0, [])
        | Ok (d, fails) ->
          note
            (Printf.sprintf
               "resumed at trial %d (%d violation%s already recorded)" d
               (List.length fails)
               (if List.length fails = 1 then "" else "s"));
          (d, fails)))
    | _ -> (0, [])
  in
  let failing = ref (List.rev failing0) (* newest first *) in
  let task_failures = ref [] in
  let pos = ref start in
  let save_state () =
    match checkpoint with
    | None -> ()
    | Some path ->
      Supervisor.checkpoint_save sup ~path
        (state_payload ~seed ~mutant ~completed:!pos
           ~failing:(List.rev !failing))
  in
  let every = max 1 checkpoint_every in
  while !pos < trials do
    let n = min every (trials - !pos) in
    let idxs = List.init n (fun i -> !pos + i) in
    let results =
      Supervisor.run sup ~label:"fuzz-trial" ~key:Fun.id
        (fun ~fuel i ->
          let s = Scenario.generate ~seed ~mutant i in
          Supervisor.Fuel.burn ~amount:(Scenario.size s) fuel;
          check_one s)
        idxs
    in
    List.iter2
      (fun i -> function
        | Ok None -> ()
        | Ok (Some _) -> failing := i :: !failing
        | Error error ->
          task_failures := { trial = i; error } :: !task_failures)
      idxs results;
    pos := !pos + n;
    save_state ()
  done;
  let failures =
    List.filter_map
      (fun i ->
        Option.map shrink_failure
          (check_one (Scenario.generate ~seed ~mutant i)))
      (List.rev !failing)
  in
  {
    failures;
    trials;
    resumed_from = start;
    task_failures = List.rev !task_failures;
    notes = List.rev !notes;
  }

(* ------------------------------------------------------------------ *)
(* Topology campaigns: the N-domain/M-core generalisation.

   No shrinking: a topology's fields are deeply cross-dependent (every
   schedule is a permutation of exactly that core's residents, IPC
   endpoints are edge-list positions, the focus/capacity/miscolour
   domains index the domain array), so field-local shrinking in the
   {!Shrink} style almost never preserves well-formedness — and the
   [(seed, idx)] pair plus the saved replay file is already a complete,
   minimal reproducer. *)

type topo_failure = { topology : Topology.t; topo_message : string }

let check_one_topo t =
  match Oracle.check_topology t with
  | Oracle.Pass -> None
  | Oracle.Fail m -> Some { topology = t; topo_message = m }

let topo_run ?pool ?(mutant = Scenario.No_mutant) ?max_domains ?max_cores ~seed
    ~trials () =
  let f i =
    check_one_topo (Topology.generate ~seed ~mutant ?max_domains ?max_cores i)
  in
  map_trials ?pool ~label:"topo-trial" f (List.init trials Fun.id)
  |> List.filter_map Fun.id

let topo_first_failure ?pool ?(mutant = Scenario.No_mutant) ?max_domains
    ?max_cores ~seed ~budget () =
  let block = match pool with Some p -> max 16 (4 * Pool.size p) | None -> 16 in
  let f i =
    check_one_topo (Topology.generate ~seed ~mutant ?max_domains ?max_cores i)
  in
  let rec go start =
    if start >= budget then None
    else begin
      let n = min block (budget - start) in
      let results =
        map_trials ?pool ~label:"topo-trial" f
          (List.init n (fun i -> start + i))
      in
      let rec first i = function
        | [] -> None
        | Some fail :: _ -> Some (start + i + 1, fail)
        | None :: rest -> first (i + 1) rest
      in
      match first 0 results with
      | Some r -> Some r
      | None -> go (start + n)
    end
  in
  go 0

type topo_campaign = {
  topo_failures : topo_failure list;
  topo_trials : int;
  topo_resumed_from : int;
  topo_task_failures : task_failure list;
  topo_notes : string list;
}

let topo_state_payload ~seed ~mutant ~max_domains ~max_cores ~completed
    ~failing =
  String.concat "\n"
    ([
       "kind topo";
       "seed " ^ string_of_int seed;
       "mutant " ^ Scenario.mutant_to_string mutant;
       "domains " ^ string_of_int max_domains;
       "cores " ^ string_of_int max_cores;
       "done " ^ string_of_int completed;
     ]
    @ List.map (fun i -> "fail " ^ string_of_int i) failing)
  ^ "\n"

let parse_topo_state ~seed ~mutant ~max_domains ~max_cores payload =
  let kind = ref None
  and pseed = ref None
  and pmutant = ref None
  and pdomains = ref None
  and pcores = ref None
  and completed = ref None
  and fails = ref [] in
  let bad = ref None in
  List.iter
    (fun line ->
      if !bad = None && String.trim line <> "" then
        match String.index_opt line ' ' with
        | None -> bad := Some ("malformed state line: " ^ line)
        | Some i -> (
          let k = String.sub line 0 i
          and v = String.sub line (i + 1) (String.length line - i - 1) in
          let int_or k' =
            match int_of_string_opt v with
            | Some n -> Some n
            | None ->
              bad := Some (Printf.sprintf "state key `%s` wants an integer" k');
              None
          in
          match k with
          | "kind" -> kind := Some v
          | "seed" -> pseed := int_or k
          | "mutant" -> pmutant := Some v
          | "domains" -> pdomains := int_or k
          | "cores" -> pcores := int_or k
          | "done" -> completed := int_or k
          | "fail" -> (
            match int_or k with
            | Some n -> fails := n :: !fails
            | None -> ())
          | _ -> bad := Some ("unknown state key `" ^ k ^ "`")))
    (String.split_on_char '\n' payload);
  match !bad with
  | Some msg -> Error msg
  | None ->
    if !kind <> Some "topo" then Error "checkpoint is not a topology campaign"
    else if !pseed <> Some seed then
      Error "checkpoint was written for a different seed"
    else if !pmutant <> Some (Scenario.mutant_to_string mutant) then
      Error "checkpoint was written for a different mutant"
    else if !pdomains <> Some max_domains then
      Error "checkpoint was written for a different --domains bound"
    else if !pcores <> Some max_cores then
      Error "checkpoint was written for a different --cores bound"
    else
      match !completed with
      | None -> Error "checkpoint has no `done` count"
      | Some d -> Ok (d, List.rev !fails)

let topo_campaign ~sup ?(mutant = Scenario.No_mutant) ?checkpoint
    ?(checkpoint_every = 50) ?(resume = false) ?(max_domains = 8)
    ?(max_cores = 4) ~seed ~trials () =
  let notes = ref [] in
  let note msg = notes := msg :: !notes in
  let gen i = Topology.generate ~seed ~mutant ~max_domains ~max_cores i in
  let start, failing0 =
    match (resume, checkpoint) with
    | true, Some path -> (
      match Checkpoint.load ~path with
      | Error (Checkpoint.Io msg) ->
        note
          (Printf.sprintf "no checkpoint to resume (%s); starting from scratch"
             msg);
        (0, [])
      | Error e ->
        note
          (Printf.sprintf
             "checkpoint rejected (%s); restarting campaign from scratch"
             (Checkpoint.error_to_string e));
        (0, [])
      | Ok payload -> (
        match parse_topo_state ~seed ~mutant ~max_domains ~max_cores payload
        with
        | Error msg ->
          note
            (Printf.sprintf
               "checkpoint rejected (%s); restarting campaign from scratch"
               msg);
          (0, [])
        | Ok (d, _) when d > trials ->
          note
            (Printf.sprintf
               "checkpoint covers %d trials but only %d were requested; \
                restarting campaign from scratch"
               d trials);
          (0, [])
        | Ok (d, fails) ->
          note
            (Printf.sprintf
               "resumed at trial %d (%d violation%s already recorded)" d
               (List.length fails)
               (if List.length fails = 1 then "" else "s"));
          (d, fails)))
    | _ -> (0, [])
  in
  let failing = ref (List.rev failing0) (* newest first *) in
  let task_failures = ref [] in
  let pos = ref start in
  let save_state () =
    match checkpoint with
    | None -> ()
    | Some path ->
      Supervisor.checkpoint_save sup ~path
        (topo_state_payload ~seed ~mutant ~max_domains ~max_cores
           ~completed:!pos ~failing:(List.rev !failing))
  in
  let every = max 1 checkpoint_every in
  while !pos < trials do
    let n = min every (trials - !pos) in
    let idxs = List.init n (fun i -> !pos + i) in
    let results =
      Supervisor.run sup ~label:"topo-trial" ~key:Fun.id
        (fun ~fuel i ->
          let t = gen i in
          Supervisor.Fuel.burn ~amount:(Topology.size t) fuel;
          Option.is_some (check_one_topo t))
        idxs
    in
    List.iter2
      (fun i -> function
        | Ok false -> ()
        | Ok true -> failing := i :: !failing
        | Error error ->
          task_failures := { trial = i; error } :: !task_failures)
      idxs results;
    pos := !pos + n;
    save_state ()
  done;
  let failures = List.filter_map (fun i -> check_one_topo (gen i))
      (List.rev !failing)
  in
  {
    topo_failures = failures;
    topo_trials = trials;
    topo_resumed_from = start;
    topo_task_failures = List.rev !task_failures;
    topo_notes = List.rev !notes;
  }

let pp_topo_failure ppf f =
  Format.fprintf ppf "@[<v>violation: %s@ topology: %a@]" f.topo_message
    Topology.pp f.topology

let pp_failure ppf f =
  Format.fprintf ppf "@[<v>violation: %s@ scenario: %a@ shrunk to: %a@ \
                      shrunk violation: %s@]"
    f.message Scenario.pp f.scenario Scenario.pp f.shrunk f.shrunk_message
