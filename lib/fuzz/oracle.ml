open Tpro_hw
open Tpro_kernel
open Tpro_secmodel
open Tpro_channel
module Presets = Time_protection.Presets

type verdict = Pass | Fail of string

let failf fmt = Format.kasprintf (fun m -> Fail m) fmt

(* ------------------------------------------------------------------ *)
(* Noninterference oracle.

   Two runs differing only in the Hi secret, under the full defence
   config, advanced in lockstep through an unwinding sweep: Lo's entire
   view of the state is compared at every Lo boundary, so a violation is
   reported against the *named lemma* of the composed theorem that it
   refutes ([flush:<resource>], [partition:llc], [kernel:padded-switch],
   [kernel:user-step], [kernel:trap], [kernel:noninterference]).  Beyond
   the sweep we check two machine-level invariants the defences are
   supposed to establish — per resource, since Hi may have run on a core
   the Lo-view sweep never looks at:

   - after a final core-local flush, every flushable resource's digest
     on every core is secret-independent (flushing really erased Hi's
     footprint — raw final digests are legitimately secret-dependent, Hi
     owns them), attributed to that resource's [flush:] lemma;
   - the digest of exactly the LLC sets belonging to Lo's page colours
     is secret-independent (partitioning really confined Hi — the whole
     LLC digest is legitimately secret-dependent in Hi's own colours),
     attributed to [partition:llc]. *)

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let lemma_of_component c =
  if has_prefix "flush:" c || has_prefix "partition:" c then c
  else if c = "kernel:clock" then "kernel:padded-switch"
  else (* lo-threads / lo-observations / lo-progress *)
    "kernel:noninterference"

(* The component to blame for a sweep divergence: among everything that
   diverged at the *first* diverging Lo boundary, prefer the most causally
   specific — a per-resource slice, then the clock, then the generic
   Lo-trace components.  A timed observation recorded at the very boundary
   where a resource slice (or the clock) first diverged is a symptom of
   that divergence, and blaming it would hide the lemma that broke. *)
let blame_sweep (sw : Unwinding.sweep) =
  match Unwinding.sweep_divergence sw with
  | None -> None
  | Some first ->
    let at_first =
      List.filter
        (fun (_, step) -> step = first.Unwinding.lo_step)
        sw.Unwinding.diverged
    in
    let pick p = List.find_opt (fun (c, _) -> p c) at_first in
    let component =
      match pick (fun c -> has_prefix "flush:" c || has_prefix "partition:" c)
      with
      | Some (c, _) -> c
      | None -> (
        match pick (fun c -> c = "kernel:clock") with
        | Some (c, _) -> c
        | None -> first.Unwinding.component)
    in
    Some { first with Unwinding.component }

let lo_llc_digest m (lo : Domain.t) =
  let llc = Machine.llc m in
  let g = Cache.geom llc in
  let pb = Machine.page_bits m in
  (* Hoist the colour-membership test out of the per-set loop: one bool
     per colour instead of a List.mem per set.  Fold order over the
     selected sets is unchanged, so the digest is bit-identical. *)
  let n_colours = Machine.n_colours m in
  let owned = Array.make (max n_colours 1) false in
  List.iter
    (fun c -> if c < Array.length owned then owned.(c) <- true)
    lo.Domain.colours;
  let d = ref 1L in
  for set = 0 to g.Cache.sets - 1 do
    if owned.(Cache.colour_of_set g ~page_bits:pb set) then
      d := Rng.chain !d (Cache.digest_set llc set)
  done;
  !d

let check_nonint s =
  let build ~secret = Scenario.build_ni s ~secret in
  let sw =
    Unwinding.sweep_pair ~max_kernel_steps:Scenario.max_steps ~build
      ~secret1:s.Scenario.secret_a ~secret2:s.Scenario.secret_b ()
  in
  match blame_sweep sw with
  | Some d ->
    failf "lemma %s refuted (secrets %d vs %d): Lo's view component %s \
           differs at Lo step %d"
      (lemma_of_component d.Unwinding.component)
      s.Scenario.secret_a s.Scenario.secret_b d.Unwinding.component
      d.Unwinding.lo_step
  | None ->
    let ra = sw.Unwinding.run_a and rb = sw.Unwinding.run_b in
    let rep = Nonint.compare_runs ra rb in
    if not (Nonint.secure rep) then
      let lemma =
        match rep with
        | { Nonint.user_costs = Some _; _ } -> "kernel:user-step"
        | { Nonint.trap_costs = Some _; _ } -> "kernel:trap"
        | _ -> "kernel:noninterference"
      in
      failf "lemma %s refuted (secrets %d vs %d): %a" lemma
        s.Scenario.secret_a s.Scenario.secret_b Nonint.pp_report rep
    else begin
      let ka = ra.Nonint.kernel and kb = rb.Nonint.kernel in
      let ma = Kernel.machine ka and mb = Kernel.machine kb in
      let cfg = Kernel.config ka in
      let fail = ref Pass in
      (if cfg.Kernel.flush_on_switch then
         for core = 0 to Machine.n_cores ma - 1 do
           let (_ : int) = Machine.flush_core_local ma ~core in
           let (_ : int) = Machine.flush_core_local mb ~core in
           if !fail = Pass then
             List.iter2
               (fun res_a res_b ->
                 if
                   !fail = Pass
                   && Resource.flushable res_a
                   && Resource.digest res_a <> Resource.digest res_b
                 then
                   fail :=
                     failf
                       "lemma flush:%s refuted: core %d: %s digest \
                        differs across secrets after a final flush \
                        (un-reset flushable state)"
                       (Resource.name res_a) core (Resource.name res_a))
               (Machine.core_resources ma ~core)
               (Machine.core_resources mb ~core)
         done);
      (if !fail = Pass && cfg.Kernel.colouring then begin
         let lo_a = Kernel.domain ka 1 and lo_b = Kernel.domain kb 1 in
         if lo_llc_digest ma lo_a <> lo_llc_digest mb lo_b then
           fail :=
             failf
               "lemma partition:llc refuted: LLC digest over Lo's \
                colours differs across secrets (partition breached)"
       end);
      !fail
    end

(* ------------------------------------------------------------------ *)
(* Legacy-equivalence oracle.

   Straight-line reimplementations of the registry folds — the per-field
   digest and flush code exactly as it stood before the resource
   registry, extended with the BTB chain — checked against a machine
   driven through a random trace.  The straight-line side uses the
   from-scratch [digest_fold] entry points, so this oracle is also the
   incremental-vs-fold differential check: the registry serves memoised
   digests while the legacy code re-folds the raw state.  Also audits
   flush-report coverage and that the post-flush private state equals a
   fresh machine's. *)

let legacy_digest_core m ~core =
  let l2d =
    match Machine.l2 m ~core with Some l2 -> Cache.digest_fold l2 | None -> 17L
  in
  let pf = Prefetch.digest_fold (Machine.prefetch m ~core) in
  let spec_tail =
    match Machine.btb m ~core with
    | Some b -> Rng.combine pf (Btb.digest_fold b)
    | None -> pf
  in
  Rng.combine
    (Rng.combine
       (Cache.digest_fold (Machine.l1i m ~core))
       (Rng.combine (Cache.digest_fold (Machine.l1d m ~core)) l2d))
    (Rng.combine
       (Tlb.digest_fold (Machine.tlb m ~core))
       (Rng.combine (Bpred.digest_fold (Machine.bpred m ~core)) spec_tail))

let legacy_digest_shared m =
  Rng.combine
    (Cache.digest_fold (Machine.llc m))
    (Interconnect.digest_fold (Machine.bus m))

let legacy_flush_cost m ~core =
  let l = Machine.lat m in
  let pre = legacy_digest_core m ~core in
  let dirty =
    Cache.dirty_count (Machine.l1d m ~core)
    + (match Machine.l2 m ~core with Some c -> Cache.dirty_count c | None -> 0)
  in
  l.Latency.flush_base + (dirty * l.Latency.dirty_wb) + Latency.jitter l pre

let run_trace m ~core ~seed ~steps =
  let rng = Rng.create seed in
  let span = 0x40000 in
  for _ = 1 to steps do
    match Rng.int rng 5 with
    | 0 | 1 ->
      ignore
        (Machine.touch_paddr m ~core ~owner:(Rng.int rng 2) ~write:false
           (Rng.int rng span))
    | 2 ->
      ignore
        (Machine.touch_paddr m ~core ~owner:(Rng.int rng 2) ~write:true
           (Rng.int rng span))
    | 3 -> ignore (Machine.fetch_paddr m ~core ~owner:0 (Rng.int rng span))
    | _ ->
      ignore
        (Machine.branch m ~core ~pc:(Rng.int rng 256 * 4) ~taken:(Rng.bool rng))
  done

let check_legacy s =
  (* The whole trial runs with the debug re-fold assertion armed: every
     registry digest read below also recomputes its from-scratch fold
     and raises {!Resource.Digest_divergence} on a missed cache
     invalidation. *)
  Resource.with_digest_debug @@ fun () ->
  let mc = Scenario.machine_config s in
  let m = Machine.create mc in
  run_trace m ~core:0 ~seed:s.Scenario.hi_seed ~steps:s.Scenario.trace_steps;
  if Machine.digest_core m ~core:0 <> legacy_digest_core m ~core:0 then
    failf "digest_core diverges from the straight-line reimplementation"
  else if Machine.digest_shared m <> legacy_digest_shared m then
    failf "digest_shared diverges from the straight-line reimplementation"
  else begin
    let expect = legacy_flush_cost m ~core:0 in
    let cost, reports = Machine.flush_core_local_report m ~core:0 in
    let uncovered =
      List.filter_map
        (fun r ->
          if
            Resource.flushable r
            && not (List.mem_assoc (Resource.name r) reports)
          then Some (Resource.name r)
          else None)
        (Machine.core_resources m ~core:0)
    in
    if uncovered <> [] then
      failf "flush report omits flushable resource(s): %s"
        (String.concat ", " uncovered)
    else if cost <> expect then
      failf "flush cost %d differs from straight-line cost %d" cost expect
    else begin
      let fresh = Machine.create { mc with Machine.fault = None } in
      if Machine.digest_core m ~core:0 <> Machine.digest_core fresh ~core:0
      then failf "post-flush private state differs from a fresh machine"
      else Pass
    end
  end

(* ------------------------------------------------------------------ *)
(* Capacity oracle.

   A catalogued channel (all of which full time protection claims to
   close) must measure 0 bits under [full] for any latency seed; the
   known-leaky ones must measure strictly more under [none].            *)

let check_capacity s =
  let n = List.length Catalog.all in
  let e = List.nth Catalog.all (s.Scenario.channel mod n) in
  let scen = e.Catalog.scenario () in
  let seeds = [ s.Scenario.cap_seed ] in
  let o_full = Attack.measure ~seeds scen ~cfg:Presets.full () in
  if o_full.Attack.capacity_bits > 1e-9 then
    failf "channel %s: %.3f bits under full time protection (seed %d)"
      e.Catalog.cname o_full.Attack.capacity_bits s.Scenario.cap_seed
  else if e.Catalog.leaky then begin
    let o_none = Attack.measure ~seeds scen ~cfg:Presets.none () in
    if o_none.Attack.capacity_bits <= 1e-9 then
      failf
        "channel %s: measured 0 bits under no protection (seed %d) — the \
         oracle's known-leaky baseline is broken"
        e.Catalog.cname s.Scenario.cap_seed
    else Pass
  end
  else Pass

(* ------------------------------------------------------------------ *)
(* Topology oracle.

   One generated N-domain/M-core system, checked pairwise: every
   ordered (varied, observer) domain pair must satisfy noninterference.
   The workhorse trick is baseline sharing — [Topology.build t ~vary:v
   ~secret:t.secret_a] is the same global system for every [v] — so the
   whole check costs N+3 executions, not N·(N−1)·2:

   - one deep unwinding sweep on the topology's focus pair (lockstep
     Lo-view comparison at every boundary, lemma-attributed), whose
     baseline run is reused as *the* baseline;
   - one varied execution per remaining domain;
   - two extra executions for the capacity probe.

   Non-focus pairs are checked from recorded evidence (observation and
   cost traces restricted to the observer domain via [Nonint.view_from],
   plus the observer-coloured LLC digest); only a divergent pair is
   re-swept to name the lemma it refutes.  Failure messages name the
   pair: "pair (hi=v, lo=o): lemma L refuted ...". *)

let pair_failf ~vary ~obs fmt =
  Format.kasprintf
    (fun m -> Fail (Printf.sprintf "pair (hi=%d, lo=%d): %s" vary obs m))
    fmt

(* Post-run flushable audit across two runs' machines, all cores: after
   a final core-local flush, every flushable resource's digest must be
   secret-independent.  Mutates both machines (flushes them) — call
   after every digest-based comparison. *)
let flushables_secret_independent ~vary ma mb =
  let fail = ref Pass in
  for core = 0 to Machine.n_cores ma - 1 do
    let (_ : int) = Machine.flush_core_local ma ~core in
    let (_ : int) = Machine.flush_core_local mb ~core in
    if !fail = Pass then
      List.iter2
        (fun res_a res_b ->
          if
            !fail = Pass
            && Resource.flushable res_a
            && Resource.digest res_a <> Resource.digest res_b
          then
            fail :=
              failf
                "lemma flush:%s refuted (vary domain %d): core %d: %s \
                 digest differs across secrets after a final flush \
                 (un-reset flushable state)"
                (Resource.name res_a) vary core (Resource.name res_a))
        (Machine.core_resources ma ~core)
        (Machine.core_resources mb ~core)
  done;
  !fail

(* One (varied, observer) pair from recorded evidence; on divergence,
   re-sweep the pair in isolation to name the refuted lemma. *)
let check_topology_pair_runs (t : Topology.t) ~vary ~obs r_base r_v =
  let rep =
    Nonint.compare_runs
      (Nonint.view_from r_base ~dom:obs)
      (Nonint.view_from r_v ~dom:obs)
  in
  let ka = r_base.Nonint.kernel and kb = r_v.Nonint.kernel in
  let partition_breached =
    (Kernel.config ka).Kernel.colouring
    && lo_llc_digest (Kernel.machine ka) (Kernel.domain ka obs)
       <> lo_llc_digest (Kernel.machine kb) (Kernel.domain kb obs)
  in
  if Nonint.secure rep && not partition_breached then Pass
  else begin
    let sw =
      Unwinding.sweep_pair
        ~max_kernel_steps:(Topology.max_steps t)
        ~lo_dom:obs
        ~build:(Topology.build t ~vary)
        ~secret1:t.Topology.secret_a ~secret2:t.Topology.secret_b ()
    in
    match blame_sweep sw with
    | Some d ->
      pair_failf ~vary ~obs
        "lemma %s refuted (secrets %d vs %d): view component %s differs \
         at step %d"
        (lemma_of_component d.Unwinding.component)
        t.Topology.secret_a t.Topology.secret_b d.Unwinding.component
        d.Unwinding.lo_step
    | None ->
      if partition_breached then
        pair_failf ~vary ~obs
          "lemma partition:llc refuted: LLC digest over domain %d's \
           colours differs across secrets (partition breached)"
          obs
      else
        let lemma =
          match rep with
          | { Nonint.user_costs = Some _; _ } -> "kernel:user-step"
          | { Nonint.trap_costs = Some _; _ } -> "kernel:trap"
          | _ -> "kernel:noninterference"
        in
        pair_failf ~vary ~obs "lemma %s refuted: %a" lemma Nonint.pp_report
          rep
  end

(* Re-execute the pair from scratch (two fresh runs): the entry point
   for targeted pair checks in tests and replay diagnostics. *)
let check_topology_pair (t : Topology.t) ~vary ~obs =
  let r_base =
    Nonint.execute
      ~max_steps:(Topology.max_steps t)
      (fun ~secret -> Topology.build t ~vary ~secret)
      t.Topology.secret_a
  in
  let r_v =
    Nonint.execute
      ~max_steps:(Topology.max_steps t)
      (fun ~secret -> Topology.build t ~vary ~secret)
      t.Topology.secret_b
  in
  check_topology_pair_runs t ~vary ~obs r_base r_v

(* Capacity probe: the per-topology end-to-end leakage bound.  Samples
   map the varied domain's secret to a digest of the observer domain's
   complete observation trace; under full protection the distribution
   must carry 0 bits. *)
let obs_symbol run ~obs =
  let ths = Domain.threads (Kernel.domain run.Nonint.kernel obs) in
  let s =
    Format.asprintf "%a"
      (Format.pp_print_list Observation.pp)
      (Observation.of_threads ths)
  in
  Int64.to_int
    (String.fold_left (fun acc c -> Rng.chain_int acc (Char.code c)) 7L s)
  land max_int

let check_topology (t : Topology.t) =
  try
    let n = Topology.n_domains t in
    let fv = t.Topology.deep_hi and fo = t.Topology.deep_lo in
    let ms = Topology.max_steps t in
    let sw =
      Unwinding.sweep_pair ~max_kernel_steps:ms ~lo_dom:fo
        ~build:(Topology.build t ~vary:fv)
        ~secret1:t.Topology.secret_a ~secret2:t.Topology.secret_b ()
    in
    match blame_sweep sw with
    | Some d ->
      pair_failf ~vary:fv ~obs:fo
        "lemma %s refuted (secrets %d vs %d): view component %s differs \
         at step %d"
        (lemma_of_component d.Unwinding.component)
        t.Topology.secret_a t.Topology.secret_b d.Unwinding.component
        d.Unwinding.lo_step
    | None ->
      let r_base = sw.Unwinding.run_a in
      let runs = Array.make n sw.Unwinding.run_b in
      for v = 0 to n - 1 do
        if v <> fv then
          runs.(v) <-
            Nonint.execute ~max_steps:ms
              (fun ~secret -> Topology.build t ~vary:v ~secret)
              t.Topology.secret_b
      done;
      let verdict = ref Pass in
      List.iter
        (fun (v, o) ->
          if !verdict = Pass then
            verdict := check_topology_pair_runs t ~vary:v ~obs:o r_base runs.(v))
        (Topology.pairs t);
      (* Machine-level flushable audit last: it flushes the machines, so
         every digest-based comparison above must already be done.  The
         baseline machine is flushed once per varied run — idempotent
         after the first. *)
      if !verdict = Pass && (Topology.kernel_config t).Kernel.flush_on_switch
      then begin
        let ma = Kernel.machine r_base.Nonint.kernel in
        for v = 0 to n - 1 do
          if !verdict = Pass then
            verdict :=
              flushables_secret_independent ~vary:v ma
                (Kernel.machine runs.(v).Nonint.kernel)
        done
      end;
      (* Capacity probe over four secrets of [cap_dom], reusing the
         baseline and the cap domain's varied run for two of them. *)
      if !verdict = Pass then begin
        let c = t.Topology.cap_dom and o = t.Topology.cap_obs in
        let extra s =
          Nonint.execute ~max_steps:ms
            (fun ~secret -> Topology.build t ~vary:c ~secret)
            s
        in
        let s3 = (t.Topology.secret_a + 3) mod 8
        and s4 = (t.Topology.secret_a + 5) mod 8 in
        let samples =
          [
            (t.Topology.secret_a, obs_symbol r_base ~obs:o);
            (t.Topology.secret_b, obs_symbol runs.(c) ~obs:o);
            (s3, obs_symbol (extra s3) ~obs:o);
            (s4, obs_symbol (extra s4) ~obs:o);
          ]
        in
        let bits = Capacity.of_samples samples in
        if bits > 1e-9 then
          verdict :=
            pair_failf ~vary:c ~obs:o
              "capacity %.3f bits under full time protection (observation \
               digest depends on the secret)"
              bits
      end;
      !verdict
  with
  | Kernel.Uncovered_flushable name ->
    failf "kernel flush-coverage audit: uncovered flushable resource %s" name
  | Resource.Digest_divergence { resource; cached; fold } ->
    failf
      "incremental digest of %s diverged from its from-scratch fold \
       (cached %Ld, fold %Ld)"
      resource cached fold
  | e -> failf "exception during trial: %s" (Printexc.to_string e)

(* ------------------------------------------------------------------ *)

let check (s : Scenario.t) =
  try
    match s.Scenario.oracle with
    | Scenario.Nonint -> check_nonint s
    | Scenario.Legacy -> check_legacy s
    | Scenario.Capacity -> check_capacity s
  with
  | Kernel.Uncovered_flushable name ->
    failf "kernel flush-coverage audit: uncovered flushable resource %s" name
  | Resource.Digest_divergence { resource; cached; fold } ->
    failf
      "incremental digest of %s diverged from its from-scratch fold \
       (cached %Ld, fold %Ld)"
      resource cached fold
  | e -> failf "exception during trial: %s" (Printexc.to_string e)
