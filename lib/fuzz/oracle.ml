open Tpro_hw
open Tpro_kernel
open Tpro_secmodel
open Tpro_channel
module Presets = Time_protection.Presets

type verdict = Pass | Fail of string

let failf fmt = Format.kasprintf (fun m -> Fail m) fmt

(* ------------------------------------------------------------------ *)
(* Noninterference oracle.

   Two runs differing only in the Hi secret, under the full defence
   config, advanced in lockstep through an unwinding sweep: Lo's entire
   view of the state is compared at every Lo boundary, so a violation is
   reported against the *named lemma* of the composed theorem that it
   refutes ([flush:<resource>], [partition:llc], [kernel:padded-switch],
   [kernel:user-step], [kernel:trap], [kernel:noninterference]).  Beyond
   the sweep we check two machine-level invariants the defences are
   supposed to establish — per resource, since Hi may have run on a core
   the Lo-view sweep never looks at:

   - after a final core-local flush, every flushable resource's digest
     on every core is secret-independent (flushing really erased Hi's
     footprint — raw final digests are legitimately secret-dependent, Hi
     owns them), attributed to that resource's [flush:] lemma;
   - the digest of exactly the LLC sets belonging to Lo's page colours
     is secret-independent (partitioning really confined Hi — the whole
     LLC digest is legitimately secret-dependent in Hi's own colours),
     attributed to [partition:llc]. *)

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let lemma_of_component c =
  if has_prefix "flush:" c || has_prefix "partition:" c then c
  else if c = "kernel:clock" then "kernel:padded-switch"
  else (* lo-threads / lo-observations / lo-progress *)
    "kernel:noninterference"

(* The component to blame for a sweep divergence: among everything that
   diverged at the *first* diverging Lo boundary, prefer the most causally
   specific — a per-resource slice, then the clock, then the generic
   Lo-trace components.  A timed observation recorded at the very boundary
   where a resource slice (or the clock) first diverged is a symptom of
   that divergence, and blaming it would hide the lemma that broke. *)
let blame_sweep (sw : Unwinding.sweep) =
  match Unwinding.sweep_divergence sw with
  | None -> None
  | Some first ->
    let at_first =
      List.filter
        (fun (_, step) -> step = first.Unwinding.lo_step)
        sw.Unwinding.diverged
    in
    let pick p = List.find_opt (fun (c, _) -> p c) at_first in
    let component =
      match pick (fun c -> has_prefix "flush:" c || has_prefix "partition:" c)
      with
      | Some (c, _) -> c
      | None -> (
        match pick (fun c -> c = "kernel:clock") with
        | Some (c, _) -> c
        | None -> first.Unwinding.component)
    in
    Some { first with Unwinding.component }

let lo_llc_digest m (lo : Domain.t) =
  let llc = Machine.llc m in
  let g = Cache.geom llc in
  let pb = Machine.page_bits m in
  (* Hoist the colour-membership test out of the per-set loop: one bool
     per colour instead of a List.mem per set.  Fold order over the
     selected sets is unchanged, so the digest is bit-identical. *)
  let n_colours = Machine.n_colours m in
  let owned = Array.make (max n_colours 1) false in
  List.iter
    (fun c -> if c < Array.length owned then owned.(c) <- true)
    lo.Domain.colours;
  let d = ref 1L in
  for set = 0 to g.Cache.sets - 1 do
    if owned.(Cache.colour_of_set g ~page_bits:pb set) then
      d := Rng.chain !d (Cache.digest_set llc set)
  done;
  !d

let check_nonint s =
  let build ~secret = Scenario.build_ni s ~secret in
  let sw =
    Unwinding.sweep_pair ~max_kernel_steps:Scenario.max_steps ~build
      ~secret1:s.Scenario.secret_a ~secret2:s.Scenario.secret_b ()
  in
  match blame_sweep sw with
  | Some d ->
    failf "lemma %s refuted (secrets %d vs %d): Lo's view component %s \
           differs at Lo step %d"
      (lemma_of_component d.Unwinding.component)
      s.Scenario.secret_a s.Scenario.secret_b d.Unwinding.component
      d.Unwinding.lo_step
  | None ->
    let ra = sw.Unwinding.run_a and rb = sw.Unwinding.run_b in
    let rep = Nonint.compare_runs ra rb in
    if not (Nonint.secure rep) then
      let lemma =
        match rep with
        | { Nonint.user_costs = Some _; _ } -> "kernel:user-step"
        | { Nonint.trap_costs = Some _; _ } -> "kernel:trap"
        | _ -> "kernel:noninterference"
      in
      failf "lemma %s refuted (secrets %d vs %d): %a" lemma
        s.Scenario.secret_a s.Scenario.secret_b Nonint.pp_report rep
    else begin
      let ka = ra.Nonint.kernel and kb = rb.Nonint.kernel in
      let ma = Kernel.machine ka and mb = Kernel.machine kb in
      let cfg = Kernel.config ka in
      let fail = ref Pass in
      (if cfg.Kernel.flush_on_switch then
         for core = 0 to Machine.n_cores ma - 1 do
           let (_ : int) = Machine.flush_core_local ma ~core in
           let (_ : int) = Machine.flush_core_local mb ~core in
           if !fail = Pass then
             List.iter2
               (fun res_a res_b ->
                 if
                   !fail = Pass
                   && Resource.flushable res_a
                   && Resource.digest res_a <> Resource.digest res_b
                 then
                   fail :=
                     failf
                       "lemma flush:%s refuted: core %d: %s digest \
                        differs across secrets after a final flush \
                        (un-reset flushable state)"
                       (Resource.name res_a) core (Resource.name res_a))
               (Machine.core_resources ma ~core)
               (Machine.core_resources mb ~core)
         done);
      (if !fail = Pass && cfg.Kernel.colouring then begin
         let lo_a = Kernel.domain ka 1 and lo_b = Kernel.domain kb 1 in
         if lo_llc_digest ma lo_a <> lo_llc_digest mb lo_b then
           fail :=
             failf
               "lemma partition:llc refuted: LLC digest over Lo's \
                colours differs across secrets (partition breached)"
       end);
      !fail
    end

(* ------------------------------------------------------------------ *)
(* Legacy-equivalence oracle.

   Straight-line reimplementations of the registry folds — the per-field
   digest and flush code exactly as it stood before the resource
   registry, extended with the BTB chain — checked against a machine
   driven through a random trace.  The straight-line side uses the
   from-scratch [digest_fold] entry points, so this oracle is also the
   incremental-vs-fold differential check: the registry serves memoised
   digests while the legacy code re-folds the raw state.  Also audits
   flush-report coverage and that the post-flush private state equals a
   fresh machine's. *)

let legacy_digest_core m ~core =
  let l2d =
    match Machine.l2 m ~core with Some l2 -> Cache.digest_fold l2 | None -> 17L
  in
  let pf = Prefetch.digest_fold (Machine.prefetch m ~core) in
  let spec_tail =
    match Machine.btb m ~core with
    | Some b -> Rng.combine pf (Btb.digest_fold b)
    | None -> pf
  in
  Rng.combine
    (Rng.combine
       (Cache.digest_fold (Machine.l1i m ~core))
       (Rng.combine (Cache.digest_fold (Machine.l1d m ~core)) l2d))
    (Rng.combine
       (Tlb.digest_fold (Machine.tlb m ~core))
       (Rng.combine (Bpred.digest_fold (Machine.bpred m ~core)) spec_tail))

let legacy_digest_shared m =
  Rng.combine
    (Cache.digest_fold (Machine.llc m))
    (Interconnect.digest_fold (Machine.bus m))

let legacy_flush_cost m ~core =
  let l = Machine.lat m in
  let pre = legacy_digest_core m ~core in
  let dirty =
    Cache.dirty_count (Machine.l1d m ~core)
    + (match Machine.l2 m ~core with Some c -> Cache.dirty_count c | None -> 0)
  in
  l.Latency.flush_base + (dirty * l.Latency.dirty_wb) + Latency.jitter l pre

let run_trace m ~core ~seed ~steps =
  let rng = Rng.create seed in
  let span = 0x40000 in
  for _ = 1 to steps do
    match Rng.int rng 5 with
    | 0 | 1 ->
      ignore
        (Machine.touch_paddr m ~core ~owner:(Rng.int rng 2) ~write:false
           (Rng.int rng span))
    | 2 ->
      ignore
        (Machine.touch_paddr m ~core ~owner:(Rng.int rng 2) ~write:true
           (Rng.int rng span))
    | 3 -> ignore (Machine.fetch_paddr m ~core ~owner:0 (Rng.int rng span))
    | _ ->
      ignore
        (Machine.branch m ~core ~pc:(Rng.int rng 256 * 4) ~taken:(Rng.bool rng))
  done

let check_legacy s =
  (* The whole trial runs with the debug re-fold assertion armed: every
     registry digest read below also recomputes its from-scratch fold
     and raises {!Resource.Digest_divergence} on a missed cache
     invalidation. *)
  Resource.with_digest_debug @@ fun () ->
  let mc = Scenario.machine_config s in
  let m = Machine.create mc in
  run_trace m ~core:0 ~seed:s.Scenario.hi_seed ~steps:s.Scenario.trace_steps;
  if Machine.digest_core m ~core:0 <> legacy_digest_core m ~core:0 then
    failf "digest_core diverges from the straight-line reimplementation"
  else if Machine.digest_shared m <> legacy_digest_shared m then
    failf "digest_shared diverges from the straight-line reimplementation"
  else begin
    let expect = legacy_flush_cost m ~core:0 in
    let cost, reports = Machine.flush_core_local_report m ~core:0 in
    let uncovered =
      List.filter_map
        (fun r ->
          if
            Resource.flushable r
            && not (List.mem_assoc (Resource.name r) reports)
          then Some (Resource.name r)
          else None)
        (Machine.core_resources m ~core:0)
    in
    if uncovered <> [] then
      failf "flush report omits flushable resource(s): %s"
        (String.concat ", " uncovered)
    else if cost <> expect then
      failf "flush cost %d differs from straight-line cost %d" cost expect
    else begin
      let fresh = Machine.create { mc with Machine.fault = None } in
      if Machine.digest_core m ~core:0 <> Machine.digest_core fresh ~core:0
      then failf "post-flush private state differs from a fresh machine"
      else Pass
    end
  end

(* ------------------------------------------------------------------ *)
(* Capacity oracle.

   A catalogued channel (all of which full time protection claims to
   close) must measure 0 bits under [full] for any latency seed; the
   known-leaky ones must measure strictly more under [none].            *)

let check_capacity s =
  let n = List.length Catalog.all in
  let e = List.nth Catalog.all (s.Scenario.channel mod n) in
  let scen = e.Catalog.scenario () in
  let seeds = [ s.Scenario.cap_seed ] in
  let o_full = Attack.measure ~seeds scen ~cfg:Presets.full () in
  if o_full.Attack.capacity_bits > 1e-9 then
    failf "channel %s: %.3f bits under full time protection (seed %d)"
      e.Catalog.cname o_full.Attack.capacity_bits s.Scenario.cap_seed
  else if e.Catalog.leaky then begin
    let o_none = Attack.measure ~seeds scen ~cfg:Presets.none () in
    if o_none.Attack.capacity_bits <= 1e-9 then
      failf
        "channel %s: measured 0 bits under no protection (seed %d) — the \
         oracle's known-leaky baseline is broken"
        e.Catalog.cname s.Scenario.cap_seed
    else Pass
  end
  else Pass

(* ------------------------------------------------------------------ *)

let check (s : Scenario.t) =
  try
    match s.Scenario.oracle with
    | Scenario.Nonint -> check_nonint s
    | Scenario.Legacy -> check_legacy s
    | Scenario.Capacity -> check_capacity s
  with
  | Kernel.Uncovered_flushable name ->
    failf "kernel flush-coverage audit: uncovered flushable resource %s" name
  | Resource.Digest_divergence { resource; cached; fold } ->
    failf
      "incremental digest of %s diverged from its from-scratch fold \
       (cached %Ld, fold %Ld)"
      resource cached fold
  | e -> failf "exception during trial: %s" (Printexc.to_string e)
