(* Format dispatch for replay files.

   A replay file's first [format] line says which generator wrote it:
   format 1 is a two-domain {!Scenario}, format 2 an N-domain
   {!Topology}.  Files written before the key existed have no [format]
   line and are read as format 1 — the CLI's [--replay] accepts every
   file it ever wrote. *)

type t = Scenario of Scenario.t | Topology of Topology.t

(* The declared format of the text: the integer of the first [format]
   line, 1 if no such line exists (pre-versioning scenario files), or an
   error if the line's value is not an integer. *)
let declared_format s =
  let lines = String.split_on_char '\n' s in
  let rec go n = function
    | [] -> Ok 1
    | line :: rest -> (
      match String.index_opt line ' ' with
      | Some i when String.sub line 0 i = "format" -> (
        let v = String.sub line (i + 1) (String.length line - i - 1) in
        match int_of_string_opt (String.trim v) with
        | Some f -> Ok f
        | None ->
          Error
            { Scenario.line = n; reason = "format: not an integer: " ^ v })
      | _ -> go (n + 1) rest)
  in
  go 1 lines

let of_string s =
  match declared_format s with
  | Error e -> Error e
  | Ok 2 -> Result.map (fun t -> Topology t) (Topology.of_string s)
  | Ok f when f = Scenario.format_version ->
    Result.map (fun sc -> Scenario sc) (Scenario.of_string s)
  | Ok f ->
    Error
      {
        Scenario.line = 0;
        reason =
          Printf.sprintf
            "unsupported replay format %d (this build reads formats %d and %d)"
            f Scenario.format_version Topology.format_version;
      }

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error (Scenario.Io msg)
  | contents -> (
    match of_string contents with
    | Ok t -> Ok t
    | Error e -> Error (Scenario.Parse e))
