(** The three differential oracles, one verdict per generated scenario.

    Every check is pure with respect to the scenario: it builds fresh
    machines/kernels from the scenario's fields, so verdicts are
    reproducible and trials can fan out across domains. *)

open Tpro_hw
open Tpro_kernel

type verdict = Pass | Fail of string

val check : Scenario.t -> verdict
(** Dispatch on the scenario's oracle kind.  Exceptions raised by a
    trial (including {!Kernel.Uncovered_flushable}) are converted into
    [Fail] — a crash on a generated scenario is a finding. *)

val check_nonint : Scenario.t -> verdict
val check_legacy : Scenario.t -> verdict
val check_capacity : Scenario.t -> verdict

val check_topology : Topology.t -> verdict
(** The pairwise N-domain oracle: a deep unwinding sweep on the
    topology's focus pair, evidence-based noninterference checks for
    every other ordered (varied, observer) domain pair (sharing one
    baseline execution, so the whole check costs N+3 executions), a
    machine-level flushable audit across all cores, and a capacity probe
    over four secrets of the topology's capacity domain.  Failures name
    the pair and the refuted lemma: ["pair (hi=2, lo=0): lemma
    partition:llc refuted ..."].  Exceptions are converted to [Fail]. *)

val check_topology_pair : Topology.t -> vary:int -> obs:int -> verdict
(** One ordered pair, re-executed from scratch — the entry point for
    targeted pair checks (e.g. asserting that a planted miscolouring
    leaks between exactly one pair). *)

val lo_llc_digest : Machine.t -> Domain.t -> int64
(** Digest of exactly the LLC sets whose colour belongs to the given
    domain — the partition-confinement projection the noninterference
    oracle compares across secrets. *)

val legacy_digest_core : Machine.t -> core:int -> int64
val legacy_digest_shared : Machine.t -> int64
val legacy_flush_cost : Machine.t -> core:int -> int
(** Straight-line (pre-registry) reimplementations, BTB-aware. *)
