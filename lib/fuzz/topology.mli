(** Procedurally generated N-domain / M-core system topologies.

    A topology is the N-domain generalisation of {!Scenario}: a flat
    record of integers deterministically derived from [(seed, idx)],
    describing how many domains and cores the system has, which core
    hosts which domain, per-domain colour budgets, buffer sizes,
    workload mixes, time slices, per-core schedule orders, and an IPC
    graph.  Every domain's program carries the same shape — an IPC
    prefix, a secret-dependent tail, a workload body — and the *varied*
    domain is a parameter of {!build}, not a property of the topology:
    the same system is re-run varying each domain in turn, and
    noninterference is demanded pairwise from the viewpoint of every
    other domain.  The hardwired Hi/Lo pair of the original scenario is
    exactly the [N = 2, M = 1] instance.

    Baseline sharing: in {!build}, every non-varied domain evaluates its
    secret tail at [secret_a], so [build t ~vary:v ~secret:t.secret_a]
    is the *same global system* for every [v] — one baseline execution
    serves all N·(N−1) ordered pairs.

    Multi-core topologies use a TDMA-partitioned memory interconnect
    (shared-bus contention is the paper's explicit scope exclusion), and
    under SMT only even cores are populated — co-scheduling distrusting
    domains on hardware threads that share private state is
    fundamentally insecure. *)

open Tpro_kernel
open Tpro_secmodel

val format_version : int
(** Replay-file format version for topology files (2); {!Scenario}
    files are format 1. *)

type dom_spec = {
  d_core : int;      (** hosting core *)
  d_colours : int;   (** LLC colours granted (out of the 15 non-kernel) *)
  d_pages : int;     (** pages of private buffer *)
  d_workload : int;  (** workload-mix selector *)
  d_wseed : int;     (** per-domain behaviour seed *)
  d_slice : int;     (** time-slice length in cycles *)
}

type t = {
  seed : int;
  idx : int;
  mutant : Scenario.mutant;
  n_cores : int;
  smt : bool;
  btb : bool;
  lat_seed : int;
  secret_a : int;  (** every domain's baseline secret *)
  secret_b : int;  (** the varied domain's alternative secret *)
  bus_slot : int;  (** TDMA slot width; 0 = shared bus (single core) *)
  pad_extra : int;
  domains : dom_spec array;
  scheds : (int * int array) list;
      (** per populated core, the installed schedule (a permutation of
          that core's domains, exercising {!Kernel.set_schedule}) *)
  ipc : (int * int) list;
      (** IPC edges [src < dst]; the endpoint index is the edge's
          position in this list *)
  deep_hi : int;  (** focus pair: varied domain of the unwinding sweep *)
  deep_lo : int;  (** focus pair: observer domain of the unwinding sweep *)
  cap_dom : int;  (** varied domain of the capacity probe *)
  cap_obs : int;  (** observer domain of the capacity probe *)
  skip_idx : int; (** selects the skip-flush mutant's core and resource *)
  mis_src : int;  (** miscolour mutant: domain whose page is remapped *)
  mis_dst : int;  (** miscolour mutant: domain whose colour it steals *)
}

val n_domains : t -> int

val generate :
  seed:int ->
  ?mutant:Scenario.mutant ->
  ?max_domains:int ->
  ?max_cores:int ->
  int ->
  t
(** [generate ~seed idx] — deterministic: equal arguments give equal
    topologies.  [max_domains] (default 8, clamped to [2, 8]) and
    [max_cores] (default 4, clamped to [1, 4]) bound the drawn shape. *)

val skip_target : t -> string
(** Resource name the [Skip_flush] mutant silently skips (on a populated
    core). *)

val machine_config : t -> Tpro_hw.Machine.config
val kernel_config : t -> Kernel.config

val buf : int -> int
(** Domain [d]'s private buffer base address. *)

val max_steps : t -> int
(** Runaway cap for one execution of this topology (scales with N). *)

val program : t -> int -> secret:int -> Program.t
(** Domain [d]'s program: IPC prefix (secret-independent, deadlock-free
    by construction), secret tail, workload body, halt. *)

val build : t -> vary:int -> secret:int -> Nonint.run
(** Boot the topology's kernel with domain [vary]'s tail evaluated at
    [secret] and every other domain's at [secret_a].  All threads are
    cost-traced (the baseline run is shared across observer domains);
    the run's observers are every domain except [vary]. *)

val pairs : t -> (int * int) list
(** All ordered (varied, observer) domain pairs. *)

val size : t -> int
(** Rough weight for fuel accounting. *)

val to_string : t -> string
val of_string : string -> (t, Scenario.parse_error) result
(** Format-2 replay round-trip: [of_string (to_string t) = Ok t].
    Never raises on malformed input; a missing or alien [format] line,
    malformed [dom]/[sched]/[ipc] lines, and out-of-range domain or
    core indices are all typed {!Scenario.parse_error}s. *)

val save : string -> t -> unit
val load : string -> (t, Scenario.load_error) result

val pp : Format.formatter -> t -> unit
