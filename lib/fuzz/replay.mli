(** Format dispatch for replay files.

    {!Scenario} writes format-1 files, {!Topology} format-2 files; both
    start with a [format] line (absent in pre-versioning scenario files,
    which read as format 1).  The CLI's [--replay] goes through this
    module so one flag replays anything the tool ever wrote. *)

type t = Scenario of Scenario.t | Topology of Topology.t

val of_string : string -> (t, Scenario.parse_error) result
(** Dispatch on the file's [format] line, then parse with the matching
    reader.  A [format] value this build does not know is a typed
    {!Scenario.parse_error} naming both supported versions.  Never
    raises. *)

val load : string -> (t, Scenario.load_error) result
