(** Trial fan-out, mutant-kill search and counterexample shrinking.

    Trials are independent (each builds fresh kernels), so they fan out
    over a {!Tpro_engine.Pool} with bit-identical results to the
    sequential path.  Every failure is minimised with {!Shrink.minimise}
    before being reported, ready to be persisted as a replay file. *)

type failure = {
  scenario : Scenario.t;  (** the originally failing scenario *)
  message : string;
  shrunk : Scenario.t;  (** minimised, still failing *)
  shrunk_message : string;
}

val check_one : Scenario.t -> (Scenario.t * string) option
(** [None] on pass, [Some (scenario, message)] on failure. *)

val run :
  ?pool:Tpro_engine.Pool.t ->
  ?mutant:Scenario.mutant ->
  seed:int ->
  trials:int ->
  unit ->
  failure list
(** Run trials [0 .. trials-1] of [seed]; shrink and report every
    failure.  Empty list = zero oracle violations. *)

val first_failure :
  ?pool:Tpro_engine.Pool.t ->
  ?mutant:Scenario.mutant ->
  seed:int ->
  budget:int ->
  unit ->
  (int * failure) option
(** Scan trials in order until one fails; [Some (trials_used, failure)]
    with [trials_used] the failing trial's 1-based position.  The
    mutant-kill validation demands [Some] within its budget. *)

type task_failure = {
  trial : int;
  error : Tpro_engine.Supervisor.task_error;
}
(** A trial whose task the supervisor had to settle as an error (after
    retries): its verdict is unknown, which the campaign reports
    rather than hides. *)

type campaign = {
  failures : failure list;  (** shrunk oracle violations, trial order *)
  trials : int;
  resumed_from : int;  (** trials skipped thanks to a checkpoint; 0 = fresh *)
  task_failures : task_failure list;
  notes : string list;  (** resume/restart decisions, for the operator *)
}

val campaign :
  sup:Tpro_engine.Supervisor.t ->
  ?mutant:Scenario.mutant ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume:bool ->
  seed:int ->
  trials:int ->
  unit ->
  campaign
(** Supervised, crash-safe campaign.  With [?checkpoint:path], progress
    is snapshotted every [checkpoint_every] (default 200) trials via
    {!Tpro_engine.Checkpoint} (write-tmp + fsync + rename).  With
    [~resume:true], the checkpoint at [path] is loaded first: the
    campaign continues from its last completed chunk, and the final
    {!campaign} value — violations, shrunk counterexamples, ordering —
    is bit-identical to an uninterrupted run, because the checkpoint
    records only trial indices and everything regenerates
    deterministically from them.  A corrupt, truncated, stale-version
    or mismatched (different seed/mutant) checkpoint is rejected with a
    note and the campaign restarts cleanly from scratch. *)

val pp_failure : Format.formatter -> failure -> unit

(** {2 Topology campaigns}

    The N-domain/M-core generalisation: each trial generates a
    {!Topology} and runs {!Oracle.check_topology}'s pairwise sweep over
    it.  Failures are not shrunk — a topology's fields are deeply
    cross-dependent (schedules are permutations of per-core residents,
    IPC endpoints are edge-list positions, the focus/capacity/miscolour
    domains index the domain array), so field-local shrinking almost
    never preserves well-formedness, and the [(seed, idx)] pair plus the
    saved format-2 replay file is already a complete reproducer. *)

type topo_failure = { topology : Topology.t; topo_message : string }

val check_one_topo : Topology.t -> topo_failure option

val topo_run :
  ?pool:Tpro_engine.Pool.t ->
  ?mutant:Scenario.mutant ->
  ?max_domains:int ->
  ?max_cores:int ->
  seed:int ->
  trials:int ->
  unit ->
  topo_failure list
(** Trials [0 .. trials-1]; empty list = zero pairwise violations. *)

val topo_first_failure :
  ?pool:Tpro_engine.Pool.t ->
  ?mutant:Scenario.mutant ->
  ?max_domains:int ->
  ?max_cores:int ->
  seed:int ->
  budget:int ->
  unit ->
  (int * topo_failure) option
(** As {!first_failure}, for topologies. *)

type topo_campaign = {
  topo_failures : topo_failure list;  (** violations, trial order *)
  topo_trials : int;
  topo_resumed_from : int;
  topo_task_failures : task_failure list;
  topo_notes : string list;
}

val topo_campaign :
  sup:Tpro_engine.Supervisor.t ->
  ?mutant:Scenario.mutant ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume:bool ->
  ?max_domains:int ->
  ?max_cores:int ->
  seed:int ->
  trials:int ->
  unit ->
  topo_campaign
(** As {!campaign}, for topologies: crash-safe checkpoints (kind
    [topo], default every 50 trials — a topology trial is roughly an
    order of magnitude heavier than a scenario trial) recording only
    trial indices, so a resumed campaign's report is bit-identical to
    an uninterrupted one.  A checkpoint written for different
    seed/mutant/[--domains]/[--cores] parameters is rejected with a
    note and the campaign restarts from scratch. *)

val pp_topo_failure : Format.formatter -> topo_failure -> unit
