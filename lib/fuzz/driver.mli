(** Trial fan-out, mutant-kill search and counterexample shrinking.

    Trials are independent (each builds fresh kernels), so they fan out
    over a {!Tpro_engine.Pool} with bit-identical results to the
    sequential path.  Every failure is minimised with {!Shrink.minimise}
    before being reported, ready to be persisted as a replay file. *)

type failure = {
  scenario : Scenario.t;  (** the originally failing scenario *)
  message : string;
  shrunk : Scenario.t;  (** minimised, still failing *)
  shrunk_message : string;
}

val check_one : Scenario.t -> (Scenario.t * string) option
(** [None] on pass, [Some (scenario, message)] on failure. *)

val run :
  ?pool:Tpro_engine.Pool.t ->
  ?mutant:Scenario.mutant ->
  seed:int ->
  trials:int ->
  unit ->
  failure list
(** Run trials [0 .. trials-1] of [seed]; shrink and report every
    failure.  Empty list = zero oracle violations. *)

val first_failure :
  ?pool:Tpro_engine.Pool.t ->
  ?mutant:Scenario.mutant ->
  seed:int ->
  budget:int ->
  unit ->
  (int * failure) option
(** Scan trials in order until one fails; [Some (trials_used, failure)]
    with [trials_used] the failing trial's 1-based position.  The
    mutant-kill validation demands [Some] within its budget. *)

type task_failure = {
  trial : int;
  error : Tpro_engine.Supervisor.task_error;
}
(** A trial whose task the supervisor had to settle as an error (after
    retries): its verdict is unknown, which the campaign reports
    rather than hides. *)

type campaign = {
  failures : failure list;  (** shrunk oracle violations, trial order *)
  trials : int;
  resumed_from : int;  (** trials skipped thanks to a checkpoint; 0 = fresh *)
  task_failures : task_failure list;
  notes : string list;  (** resume/restart decisions, for the operator *)
}

val campaign :
  sup:Tpro_engine.Supervisor.t ->
  ?mutant:Scenario.mutant ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume:bool ->
  seed:int ->
  trials:int ->
  unit ->
  campaign
(** Supervised, crash-safe campaign.  With [?checkpoint:path], progress
    is snapshotted every [checkpoint_every] (default 200) trials via
    {!Tpro_engine.Checkpoint} (write-tmp + fsync + rename).  With
    [~resume:true], the checkpoint at [path] is loaded first: the
    campaign continues from its last completed chunk, and the final
    {!campaign} value — violations, shrunk counterexamples, ordering —
    is bit-identical to an uninterrupted run, because the checkpoint
    records only trial indices and everything regenerates
    deterministically from them.  A corrupt, truncated, stale-version
    or mismatched (different seed/mutant) checkpoint is rejected with a
    note and the campaign restarts cleanly from scratch. *)

val pp_failure : Format.formatter -> failure -> unit
