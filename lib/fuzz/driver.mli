(** Trial fan-out, mutant-kill search and counterexample shrinking.

    Trials are independent (each builds fresh kernels), so they fan out
    over a {!Tpro_engine.Pool} with bit-identical results to the
    sequential path.  Every failure is minimised with {!Shrink.minimise}
    before being reported, ready to be persisted as a replay file. *)

type failure = {
  scenario : Scenario.t;  (** the originally failing scenario *)
  message : string;
  shrunk : Scenario.t;  (** minimised, still failing *)
  shrunk_message : string;
}

val check_one : Scenario.t -> (Scenario.t * string) option
(** [None] on pass, [Some (scenario, message)] on failure. *)

val run :
  ?pool:Tpro_engine.Pool.t ->
  ?mutant:Scenario.mutant ->
  seed:int ->
  trials:int ->
  unit ->
  failure list
(** Run trials [0 .. trials-1] of [seed]; shrink and report every
    failure.  Empty list = zero oracle violations. *)

val first_failure :
  ?pool:Tpro_engine.Pool.t ->
  ?mutant:Scenario.mutant ->
  seed:int ->
  budget:int ->
  unit ->
  (int * failure) option
(** Scan trials in order until one fails; [Some (trials_used, failure)]
    with [trials_used] the failing trial's 1-based position.  The
    mutant-kill validation demands [Some] within its budget. *)

val pp_failure : Format.formatter -> failure -> unit
