(** Named time-protection configurations and the ablation grid.

    Every experiment reports results against these presets; the ablations
    knock out one defence at a time from the full configuration to show
    that each mechanism is necessary. *)

open Tpro_kernel

val none : Kernel.config
(** A conventional OS: no time protection at all. *)

val full : Kernel.config
(** Complete time protection as proposed in Sect. 4.2. *)

val flush_pad : Kernel.config
(** Core-local flushing with padded switches only (no partitioning). *)

val colour_only : Kernel.config
(** LLC colouring only (no flushing). *)

val without_flush : Kernel.config
val without_pad : Kernel.config
val without_colouring : Kernel.config
val without_clone : Kernel.config
val without_irq_partitioning : Kernel.config
val without_deterministic_delivery : Kernel.config

val name : Kernel.config -> string
(** Preset name if recognised, else a flag summary. *)

val known : (string * Kernel.config) list
(** Every named preset, in declaration order: the standard four plus each
    single-mechanism knockout. *)

val by_name : string -> Kernel.config option
(** Inverse of {!name} over {!known}. *)

val standard : (string * Kernel.config) list
(** [none; flush_pad; colour_only; full]. *)

val ablations : (string * Kernel.config) list
(** [full] plus each single-mechanism knockout. *)
