(** The standard verification scenario for the Sect. 5.2 proof stack.

    Historically this was a hardwired Hi/Lo pair: two domains on one
    core, Hi running a *random program derived from the secret* (so
    different secrets mean genuinely different load/store/branch/syscall
    behaviour, not just different operands), Lo a fixed observer that
    reads the clock, times loads, takes traps and branches across
    several of its slices.  Noninterference demands Lo's complete view
    be identical for every secret.

    The construction is now record-parameterised: {!build_spec} takes a
    {!spec} describing any N-domain/M-core system (per-domain cores,
    colour budgets, slices, regions, programs, IRQ ownership, per-core
    schedules, and an optional post-boot tweak hook), and the legacy
    two-domain entry points are thin specs over it — they produce
    bit-identical kernels to their historical hand-rolled bodies, so
    golden outputs are unaffected. *)

open Tpro_kernel
open Tpro_secmodel

val slice : int
val pad : int

val machine_config : seed:int -> Tpro_hw.Machine.config
(** The scenario's machine: a small 4-colour LLC so the sampled programs
    can actually collide when colouring is off. *)

val machine_config_with :
  with_btb:bool -> seed:int -> Tpro_hw.Machine.config
(** {!machine_config} with an optional 64-entry BTB, so [tpro prove]
    covers every registered resource kind (the BTB is off in the
    standard scenario to keep the golden experiment outputs stable). *)

val hi_program : secret:int -> Program.t
(** Hi's secret-dependent behaviour (interrupt arming, kernel-path
    choice, page sweep, random tail). *)

val observer : Program.t
(** Lo's fixed observer program. *)

type domain_spec = {
  core : int option;       (** hosting core ([None] = kernel default) *)
  n_colours : int option;  (** colour budget ([None] = kernel default) *)
  slice : int;
  pad_cycles : int;
  regions : (int * int) list;  (** [(vbase, pages)] to back, in order *)
  programs : Program.t list;   (** threads to spawn, in order *)
  irqs : int list;             (** IRQ lines this domain owns *)
  observer : bool;  (** include this domain's threads in the run's observers *)
}

type spec = {
  machine : Tpro_hw.Machine.config;
  cfg : Kernel.config;
  n_endpoints : int option;
  n_irqs : int option;
  schedules : (int * int array) list;
      (** [(core, order)] replacing that core's creation-order schedule *)
  domains : domain_spec list;
  tweak : (Kernel.t -> unit) option;
      (** runs after boot-time configuration, before any thread is
          spawned — the hook used e.g. to plant a miscoloured frame *)
}

val domain_spec :
  ?core:int ->
  ?n_colours:int ->
  ?regions:(int * int) list ->
  ?programs:Program.t list ->
  ?irqs:int list ->
  ?observer:bool ->
  slice:int ->
  pad_cycles:int ->
  unit ->
  domain_spec

val spec :
  ?n_endpoints:int ->
  ?n_irqs:int ->
  ?schedules:(int * int array) list ->
  ?tweak:(Kernel.t -> unit) ->
  machine:Tpro_hw.Machine.config ->
  cfg:Kernel.config ->
  domain_spec list ->
  spec

val build_spec : spec -> Nonint.run
(** Boot a kernel from [spec]: create every domain (in list order —
    colour and clone assignment follow creation order), map every
    region, install IRQ owners then schedules, run [tweak], then spawn
    all programs domain-major.  The run's observers are the threads of
    the [observer]-flagged domains.  Raises [Invalid_argument] on an
    invalid schedule (see {!Kernel.set_schedule}). *)

val build : cfg:Kernel.config -> seed:int -> secret:int -> Nonint.run
(** [seed] selects the latency function; [secret] seeds Hi's program.
    Equivalent to {!build_spec} on the classic two-domain spec. *)

val build_with :
  with_btb:bool -> cfg:Kernel.config -> seed:int -> secret:int -> Nonint.run

val builder : cfg:Kernel.config -> seed:int -> secret:int -> Nonint.run
(** Same as {!build}; the labelled shape [Proofs.all] expects. *)

val build_with_program :
  cfg:Kernel.config -> seed:int -> hi_prog:Program.t -> Nonint.run
(** Compact variant for the exhaustive checker: Hi runs exactly
    [hi_prog]; Lo runs a short observer.  Small slices keep each
    execution cheap enough to enumerate hundreds of programs. *)

val build_with_program_on :
  with_btb:bool ->
  cfg:Kernel.config ->
  seed:int ->
  hi_prog:Program.t ->
  Nonint.run

val default_secrets : int list
val default_seeds : int list
