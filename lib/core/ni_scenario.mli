(** The standard verification scenario for the Sect. 5.2 proof stack.

    Two domains on one core: Hi runs a *random program derived from the
    secret* (so different secrets mean genuinely different load/store/
    branch/syscall behaviour, not just different operands); Lo runs a
    fixed observer that reads the clock, times loads, takes traps and
    branches across several of its slices.  Noninterference demands Lo's
    complete view be identical for every secret. *)

open Tpro_kernel
open Tpro_secmodel

val slice : int
val pad : int

val machine_config : seed:int -> Tpro_hw.Machine.config
(** The scenario's machine: a small 4-colour LLC so the sampled programs
    can actually collide when colouring is off. *)

val machine_config_with :
  with_btb:bool -> seed:int -> Tpro_hw.Machine.config
(** {!machine_config} with an optional 64-entry BTB, so [tpro prove]
    covers every registered resource kind (the BTB is off in the
    standard scenario to keep the golden experiment outputs stable). *)

val hi_program : secret:int -> Program.t
(** Hi's secret-dependent behaviour (interrupt arming, kernel-path
    choice, page sweep, random tail). *)

val observer : Program.t
(** Lo's fixed observer program. *)

val build : cfg:Kernel.config -> seed:int -> secret:int -> Nonint.run
(** [seed] selects the latency function; [secret] seeds Hi's program. *)

val build_with :
  with_btb:bool -> cfg:Kernel.config -> seed:int -> secret:int -> Nonint.run

val builder : cfg:Kernel.config -> seed:int -> secret:int -> Nonint.run
(** Same as {!build}; the labelled shape [Proofs.all] expects. *)

val build_with_program :
  cfg:Kernel.config -> seed:int -> hi_prog:Program.t -> Nonint.run
(** Compact variant for the exhaustive checker: Hi runs exactly
    [hi_prog]; Lo runs a short observer.  Small slices keep each
    execution cheap enough to enumerate hundreds of programs. *)

val build_with_program_on :
  with_btb:bool ->
  cfg:Kernel.config ->
  seed:int ->
  hi_prog:Program.t ->
  Nonint.run

val default_secrets : int list
val default_seeds : int list
