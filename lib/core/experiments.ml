open Tpro_hw
open Tpro_kernel
open Tpro_channel

let default_seeds = List.init 8 (fun i -> i)

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)

(* All capacity measurements go through here: with a pool the (secret x
   seed) trial grid fans out across domains; the outcome is bit-identical
   either way (see Attack.measure_par). *)
let measure_with ?pool ~seeds scenario ~cfg () =
  match pool with
  | None -> Attack.measure ~seeds scenario ~cfg ()
  | Some p -> Attack.measure_par ~seeds ~pool:p scenario ~cfg ()

let capacity_row ?pool ~seeds scenario (name, cfg) =
  let o = measure_with ?pool ~seeds scenario ~cfg () in
  [
    name;
    Table.cell_float o.Attack.capacity_bits;
    string_of_int o.Attack.distinct_outputs;
    string_of_int (List.length o.Attack.samples);
  ]

let capacity_table ?pool ~seeds ~id ~title ~anchor ~note scenario configs =
  {
    Table.id;
    title;
    anchor;
    headers = [ "config"; "capacity(bits)"; "distinct-outputs"; "samples" ];
    rows = List.map (capacity_row ?pool ~seeds scenario) configs;
    note;
  }

(* ------------------------------------------------------------------ *)
(* E1: downgrader arrival time (Figure 1, Sect. 3.2)                   *)

let e1_downgrader ?(seeds = default_seeds) ?pool () =
  let scen = Downgrader.scenario () in
  let base =
    capacity_table ?pool ~seeds ~id:"E1"
      ~title:"downgrader arrival-time channel (encryption component)"
      ~anchor:"Figure 1, Sect. 3.2"
      ~note:
        "arrival time leaks the crypto duration unless delivery is \
         deterministic; WCET padding inside Hi also closes it (Sect. 4.3)"
      scen
      [
        ("none", Presets.none);
        ("full\\det-ipc", Presets.without_deterministic_delivery);
        ("full", Presets.full);
      ]
  in
  let padded =
    capacity_row ?pool ~seeds (Downgrader.padded_scenario ())
      ("none+WCET-padded-app", Presets.none)
  in
  { base with Table.rows = base.Table.rows @ [ padded ] }

(* ------------------------------------------------------------------ *)
(* E2 / E3: prime-and-probe                                            *)

let e2_l1_prime_probe ?(seeds = default_seeds) ?pool () =
  capacity_table ?pool ~seeds ~id:"E2"
    ~title:"L1 prime-and-probe covert channel (time-shared, core-private)"
    ~anchor:"Sect. 3.1"
    ~note:
      "core-private state is flushable: flushing on domain switch closes \
       the channel; colouring alone cannot reach the single-colour L1"
    (Cache_channel.l1_scenario ())
    [
      ("none", Presets.none);
      ("colour-only", Presets.colour_only);
      ("flush+pad", Presets.flush_pad);
      ("full", Presets.full);
    ]

let e3_llc_prime_probe ?(seeds = default_seeds) ?pool () =
  capacity_table ?pool ~seeds ~id:"E3"
    ~title:"LLC prime-and-probe covert channel (shared cache)"
    ~anchor:"Sect. 3.1, 4.1"
    ~note:
      "flushing core-local state does NOT close a shared-cache channel; \
       partitioning by page colouring does — exactly Sect. 4.1's claim"
    (Cache_channel.llc_scenario ())
    [
      ("none", Presets.none);
      ("flush+pad", Presets.flush_pad);
      ("full\\colour", Presets.without_colouring);
      ("colour-only", Presets.colour_only);
      ("full", Presets.full);
    ]

(* ------------------------------------------------------------------ *)
(* E4: switch latency vs. dirtiness (Sect. 4.2)                        *)

let e4_slice = 60_000
let e4_pad = 15_000

let switch_metrics ~pad_on ~lines ~seed =
  let cfg =
    {
      Presets.none with
      Kernel.flush_on_switch = true;
      pad_switch = pad_on;
    }
  in
  let machine_config =
    {
      Machine.default_config with
      Machine.lat = Latency.with_seed Latency.default seed;
    }
  in
  let k = Kernel.create ~machine_config cfg in
  let d0 = Kernel.create_domain k ~slice:e4_slice ~pad_cycles:e4_pad () in
  let d1 = Kernel.create_domain k ~slice:e4_slice ~pad_cycles:e4_pad () in
  Kernel.map_region k d0 ~vbase:0x2000_0000 ~pages:4;
  (* stores to dirty the cache, then fine-grained compute so the domain
     occupies its whole slice and the switch is timer-triggered *)
  ignore
    (Kernel.spawn k d0
       (Program.concat
          [
            Prime_probe.write_lines ~base:0x2000_0000 ~lines ~line_size:64;
            Prime_probe.filler ~cycles:(2 * e4_slice) ~chunk:25;
            [| Program.Halt |];
          ]));
  ignore (Kernel.spawn k d1 [| Program.Compute 50; Program.Halt |]);
  Kernel.run ~max_steps:40_000 k;
  let rec first = function
    | Event.Switch { from_dom = 0; slice_start; start; finish; flush_cycles; _ }
      :: _ ->
      Some (finish - start, finish - slice_start, flush_cycles)
    | _ :: rest -> first rest
    | [] -> None
  in
  match first (Kernel.events k) with
  | Some m -> m
  | None -> failwith "E4: no switch observed"

let e4_switch_latency ?(seeds = default_seeds) () =
  let dirty_counts = [ 0; 64; 128; 192; 256 ] in
  let stats f =
    let h = Hist.of_list f in
    (int_of_float (Hist.mean h), Hist.stddev h)
  in
  let rows =
    List.map
      (fun lines ->
        let raw =
          List.map (fun seed ->
              let d, _, _ = switch_metrics ~pad_on:false ~lines ~seed in
              d)
            seeds
        in
        let flushes =
          List.map (fun seed ->
              let _, _, f = switch_metrics ~pad_on:false ~lines ~seed in
              f)
            seeds
        in
        let slots =
          List.map (fun seed ->
              let _, s, _ = switch_metrics ~pad_on:true ~lines ~seed in
              s)
            seeds
        in
        let raw_mean, raw_sd = stats raw in
        let flush_mean, _ = stats flushes in
        let slot_distinct = List.sort_uniq compare slots in
        [
          string_of_int lines;
          string_of_int flush_mean;
          Printf.sprintf "%d +- %.0f" raw_mean raw_sd;
          (match slot_distinct with
          | [ s ] -> Printf.sprintf "%d (constant)" s
          | l -> Printf.sprintf "VARIES over %d values" (List.length l));
        ])
      dirty_counts
  in
  {
    Table.id = "E4";
    title = "domain-switch latency vs. outgoing domain's dirty lines";
    anchor = "Sect. 4.2";
    headers =
      [ "dirty-lines"; "flush-cost"; "raw switch (unpadded)"; "padded slot" ];
    rows;
    note =
      "the flush cost grows with dirtiness - itself a channel; padding to \
       slice_start + slice + pad makes the visible slot constant";
  }

(* ------------------------------------------------------------------ *)
(* E5 / E6                                                             *)

let e5_kernel_text ?(seeds = default_seeds) ?pool () =
  capacity_table ?pool ~seeds ~id:"E5"
    ~title:"shared kernel-text channel and the kernel clone"
    ~anchor:"Sect. 4.2"
    ~note:
      "read-only sharing of kernel code leaks which handlers ran; \
       flushing and user-memory colouring do not help - only a \
       domain-private (cloned, coloured) kernel image closes it"
    (Kernel_text.scenario ())
    [
      ("none", Presets.none);
      ("flush+pad", Presets.flush_pad);
      ("full\\clone", Presets.without_clone);
      ("full", Presets.full);
    ]

let e6_interrupts ?(seeds = default_seeds) ?pool () =
  capacity_table ?pool ~seeds ~id:"E6"
    ~title:"interrupt channel and IRQ partitioning"
    ~anchor:"Sect. 4.2"
    ~note:
      "a Trojan-armed device interrupt lands in the victim's slice and \
       perturbs its measured time; masking non-owned interrupts defers it \
       to the owner's own slice"
    (Irq_channel.scenario ())
    [
      ("none", Presets.none);
      ("full\\irq-part", Presets.without_irq_partitioning);
      ("full", Presets.full);
    ]

(* ------------------------------------------------------------------ *)
(* E7: the proof stack (Sect. 5.2)                                     *)

let e7_proofs ?(seeds = Ni_scenario.default_seeds)
    ?(secrets = Ni_scenario.default_secrets) () =
  let row_of (cfg_name, cfg) =
    let report = Verify.run ~seeds ~secrets ~cfg () in
    List.map
      (fun (c : Tpro_secmodel.Proofs.check) ->
        [
          cfg_name;
          c.Tpro_secmodel.Proofs.name;
          (if c.Tpro_secmodel.Proofs.holds then "holds" else "VIOLATED");
          (let d = Tpro_secmodel.Proofs.detail_text c.Tpro_secmodel.Proofs.detail in
           if String.length d > 60 then String.sub d 0 57 ^ "..." else d);
        ])
      report.Verify.checks
  in
  {
    Table.id = "E7";
    title = "proof obligations: unwinding checks and noninterference";
    anchor = "Sect. 5.2";
    headers = [ "config"; "obligation"; "verdict"; "evidence" ];
    rows =
      List.concat_map row_of
        [ ("none", Presets.none); ("full", Presets.full) ];
    note =
      "every obligation is checked over random Hi programs, multiple \
       secrets and multiple latency-function seeds; with full time \
       protection all hold, without it the checkers find counter-examples";
  }

(* ------------------------------------------------------------------ *)
(* E8: TLB (Sect. 5.3)                                                 *)

let e8_functional_rows () =
  let open Tpro_secmodel in
  let trials = 200 in
  let run_theorem ~invalidate =
    let violations = ref 0 in
    for trial = 1 to trials do
      let rng = Rng.create (trial * 7919) in
      let tlb = Tlb.create ~capacity:32 in
      let pt_a = Hashtbl.create 16 and pt_b = Hashtbl.create 16 in
      (* give B some established, consistent entries *)
      for vpn = 0 to 7 do
        Hashtbl.replace pt_b vpn (100 + vpn);
        Lemma.Tlb_asid.apply tlb ~asid:2 pt_b (Lemma.Tlb_asid.Touch vpn)
      done;
      let ops =
        List.init 64 (fun _ ->
            let vpn = Rng.int rng 16 in
            match Rng.int rng 4 with
            | 0 -> Lemma.Tlb_asid.Map { vpn; pfn = Rng.int rng 256 }
            | 1 -> Lemma.Tlb_asid.Unmap vpn
            | 2 -> Lemma.Tlb_asid.Touch vpn
            | _ -> Lemma.Tlb_asid.Flush_asid)
      in
      let preserved =
        List.for_all
          (fun op ->
            Lemma.Tlb_asid.apply ~invalidate_on_update:invalidate tlb ~asid:1
              pt_a op;
            Lemma.Tlb_asid.consistent tlb ~asid:2 pt_b)
          ops
      in
      if not preserved then incr violations
    done;
    !violations
  in
  let own_asid_breaks =
    (* a buggy OS that remaps without invalidating breaks consistency for
       its OWN asid... *)
    let broken = ref 0 in
    for trial = 1 to trials do
      let rng = Rng.create (trial * 104729) in
      let tlb = Tlb.create ~capacity:32 in
      let pt = Hashtbl.create 16 in
      let ok = ref true in
      for _ = 1 to 32 do
        let vpn = Rng.int rng 8 in
        (match Rng.int rng 2 with
        | 0 ->
          Lemma.Tlb_asid.apply ~invalidate_on_update:false tlb ~asid:1 pt
            (Lemma.Tlb_asid.Map { vpn; pfn = Rng.int rng 256 })
        | _ -> Lemma.Tlb_asid.apply tlb ~asid:1 pt (Lemma.Tlb_asid.Touch vpn));
        if not (Lemma.Tlb_asid.consistent tlb ~asid:1 pt) then ok := false
      done;
      if not !ok then incr broken
    done;
    !broken
  in
  [
    [ "ops under ASID A vs B's consistency (correct OS)";
      Printf.sprintf "%d/%d violations" (run_theorem ~invalidate:true) trials;
      "theorem holds" ];
    [ "ops under ASID A vs B's consistency (buggy OS, no invalidation)";
      Printf.sprintf "%d/%d violations" (run_theorem ~invalidate:false) trials;
      "still holds: A cannot break B" ];
    [ "buggy OS vs its OWN consistency";
      Printf.sprintf "%d/%d runs broken" own_asid_breaks trials;
      "own-ASID consistency needs the invalidation" ];
  ]

let e8_tlb ?(seeds = default_seeds) ?pool () =
  let timing =
    List.map
      (fun (name, cfg) ->
        let o = measure_with ?pool ~seeds (Tlb_channel.scenario ()) ~cfg () in
        [
          "TLB timing channel under " ^ name;
          Table.cell_float o.Attack.capacity_bits ^ " bits";
          (if o.Attack.capacity_bits > 0.01 then "open" else "closed");
        ])
      [
        ("none", Presets.none);
        ("full\\flush (ASID tagging only)", Presets.without_flush);
        ("full", Presets.full);
      ]
  in
  {
    Table.id = "E8";
    title = "TLB: functional partitioning theorem vs. the timing channel";
    anchor = "Sect. 5.3";
    headers = [ "property / channel"; "result"; "interpretation" ];
    rows = e8_functional_rows () @ timing;
    note =
      "ASID tagging gives functional isolation (the Syeda & Klein-style \
       theorem) but the capacity contention still leaks timing - the TLB \
       is flushable state and must be flushed, per Sect. 4.1";
  }

(* ------------------------------------------------------------------ *)
(* E9: stateless interconnect (Sect. 2)                                *)

let e9_interconnect ?(seeds = default_seeds) ?pool () =
  let row (name, bus, cfg) =
    let o =
      measure_with ?pool ~seeds (Interconnect_channel.scenario ~bus ()) ~cfg ()
    in
    [ name; Table.cell_float o.Attack.capacity_bits;
      (if o.Attack.capacity_bits > 0.01 then "open" else "closed") ]
  in
  {
    Table.id = "E9";
    title = "stateless interconnect channel (cross-core, concurrent)";
    anchor = "Sect. 2";
    headers = [ "configuration"; "capacity(bits)"; "channel" ];
    rows =
      List.map row
        [
          ("none, shared bus", Interconnect_channel.shared_bus, Presets.none);
          ("FULL time protection, shared bus",
           Interconnect_channel.shared_bus, Presets.full);
          ("full + MBA-style approximate throttling",
           Interconnect_channel.mba_bus, Presets.full);
          ("full + hypothetical TDMA bandwidth partitioning",
           Interconnect_channel.tdma_bus, Presets.full);
        ];
    note =
      "the paper's stated scope limit: no OS mechanism closes bandwidth \
       contention; it needs hardware partitioning, which no mainstream \
       hardware provides";
  }

(* ------------------------------------------------------------------ *)
(* E10: colour inventory (Sect. 4.1)                                   *)

let e10_colours () =
  let line_bits = 6 in
  let geometries =
    [
      ("256 KiB, 8-way", 512, 8);
      ("512 KiB, 8-way", 1024, 8);
      ("2 MiB, 16-way", 2048, 16);
      ("8 MiB, 16-way", 8192, 16);
      ("32 MiB, 16-way", 32768, 16);
    ]
  in
  let rows =
    List.map
      (fun (name, sets, ways) ->
        let g = Cache.geometry ~sets ~ways ~line_bits () in
        let colours = Cache.n_colours g ~page_bits:12 in
        [
          name;
          string_of_int sets;
          string_of_int ways;
          string_of_int colours;
          (if colours >= 64 then ">= 64: ample for colouring"
           else "small cache: few colours");
        ])
      geometries
  in
  {
    Table.id = "E10";
    title = "page-colour inventory of last-level caches (4 KiB pages)";
    anchor = "Sect. 4.1";
    headers = [ "LLC"; "sets"; "ways"; "colours"; "assessment" ];
    rows;
    note =
      "the paper: 'modern last-level caches have at least 64 different \
       colours' - reproduced by the geometry arithmetic for >= 8 MiB LLCs";
  }

(* ------------------------------------------------------------------ *)
(* E11: padding strategies (Sect. 4.3)                                 *)

let e11_slice = 20_000
let e11_pad = 12_000
let e11_secrets = [ 0; 1; 2; 3 ]

let e11_run ~interim ~seed ~secret =
  let machine_config =
    {
      Machine.default_config with
      Machine.lat = Latency.with_seed Latency.default seed;
    }
  in
  let k = Kernel.create ~machine_config Presets.full in
  let hi = Kernel.create_domain k ~slice:e11_slice ~pad_cycles:e11_pad () in
  let lo = Kernel.create_domain k ~slice:e11_slice ~pad_cycles:e11_pad () in
  ignore
    (Kernel.spawn k hi
       [|
         Program.Compute (3_000 + (secret * 500));
         Program.Syscall (Program.Sys_send { ep = 0; msg = 0 });
         Program.Halt;
       |]);
  let filler =
    if interim then
      Some (Kernel.spawn k hi (Array.make 2_000 (Program.Compute 50)))
    else None
  in
  let net =
    Kernel.spawn k lo
      [|
        Program.Syscall (Program.Sys_recv { ep = 0 });
        Program.Read_clock;
        Program.Halt;
      |]
  in
  (* count the filler's progress only up to the first switch out of Hi:
     that is the work recovered from the padding window of one slice *)
  let useful_at_first_switch = ref None in
  let steps = ref 0 in
  while !steps < 100_000 && Kernel.step k do
    incr steps;
    (match (Kernel.last_event k, !useful_at_first_switch, filler) with
    | Some (Event.Switch { from_dom; _ }), None, Some th
      when from_dom = hi.Domain.did ->
      useful_at_first_switch := Some (th.Thread.pc * 50)
    | _ -> ())
  done;
  let arrival =
    match Prime_probe.clock_values (Thread.observations net) with
    | [ t ] -> t
    | _ -> -1
  in
  let useful = Option.value ~default:0 !useful_at_first_switch in
  (arrival, useful)

let e11_padding_strategies ?(seeds = default_seeds) () =
  let measure ~interim =
    let samples =
      List.concat_map
        (fun secret ->
          List.map (fun seed ->
              let arrival, useful = e11_run ~interim ~seed ~secret in
              ((secret, arrival), useful))
            seeds)
        e11_secrets
    in
    let capacity = Capacity.of_samples (List.map fst samples) in
    let useful_mean =
      let l = List.map snd samples in
      List.fold_left ( + ) 0 l / List.length l
    in
    (capacity, useful_mean)
  in
  let cap_busy, useful_busy = measure ~interim:false in
  let cap_interim, useful_interim = measure ~interim:true in
  let row name cap useful =
    [
      name;
      Table.cell_float cap;
      string_of_int useful;
      Printf.sprintf "%.0f%%" (100. *. float_of_int useful /. float_of_int e11_slice);
    ]
  in
  {
    Table.id = "E11";
    title = "padding the downgrader: busy idle vs. interim Hi thread";
    anchor = "Sect. 4.3";
    headers =
      [ "strategy"; "capacity(bits)"; "useful cycles in Hi slice"; "utilisation" ];
    rows =
      [
        row "kernel idles to slice boundary (busy padding)" cap_busy useful_busy;
        row "interim Hi thread scheduled during padding" cap_interim
          useful_interim;
      ];
    note =
      "both strategies keep delivery deterministic (capacity 0); \
       scheduling another Hi thread recovers the padding as useful work, \
       as Sect. 4.3 proposes";
  }

(* ------------------------------------------------------------------ *)
(* E12: hyperthreading (Sect. 4.1)                                     *)

let e12_smt ?(seeds = default_seeds) ?pool () =
  let row (name, smt, cfg) =
    let o = measure_with ?pool ~seeds (Smt_channel.scenario ~smt ()) ~cfg () in
    [ name; Table.cell_float o.Attack.capacity_bits;
      (if o.Attack.capacity_bits > 0.01 then "open" else "closed") ]
  in
  {
    Table.id = "E12";
    title = "hyperthreading: concurrently shared core-private state";
    anchor = "Sect. 4.1";
    headers = [ "configuration"; "capacity(bits)"; "channel" ];
    rows =
      List.map row
        [
          ("sibling hyperthreads, no protection", true, Presets.none);
          ("sibling hyperthreads, FULL time protection", true, Presets.full);
          ("separate physical cores, full", false, Presets.full);
        ];
    note =
      "flushing cannot apply to concurrently shared state and the L1 has \
       no colours to partition: 'hyperthreading is fundamentally insecure, \
       and multiple hardware threads must never be allocated to different \
       security domains'";
  }

(* ------------------------------------------------------------------ *)
(* E13: Flush+Reload on shared memory (Sect. 4.2)                      *)

let e13_flush_reload ?(seeds = default_seeds) ?pool () =
  let row (name, shared, cfg) =
    let o =
      measure_with ?pool ~seeds (Flush_reload.scenario ~shared ()) ~cfg ()
    in
    [ name; Table.cell_float o.Attack.capacity_bits;
      (if o.Attack.capacity_bits > 0.01 then "open" else "closed") ]
  in
  {
    Table.id = "E13";
    title = "Flush+Reload on shared user memory";
    anchor = "Sect. 4.2 (Gullasch et al.; Yarom & Falkner)";
    headers = [ "configuration"; "capacity(bits)"; "channel" ];
    rows =
      List.map row
        [
          ("shared library page, none", true, Presets.none);
          ("shared library page, FULL time protection", true, Presets.full);
          ("per-domain copies, none", false, Presets.none);
          ("per-domain copies, full", false, Presets.full);
        ];
    note =
      "read-only sharing of a physical page defeats colouring (one frame, \
       one colour) and flushing (the LLC keeps the evidence); the defence \
       is not to share - the same reasoning that forces the kernel clone";
  }

(* ------------------------------------------------------------------ *)
(* E14: transmission protocol — error rate and bandwidth               *)

let e14_bandwidth ?seeds:_ () =
  let message_len = 24 in
  let row (name, scen) cfg_name cfg =
    let t =
      Protocol.transmit scen ~cfg
        ~message:(Protocol.random_message scen ~len:message_len)
    in
    [
      name;
      cfg_name;
      Printf.sprintf "%.0f%%" (100. *. t.Protocol.error_rate);
      Printf.sprintf "%.0f" t.Protocol.mean_cycles_per_symbol;
      Printf.sprintf "%.1f" t.Protocol.bandwidth_bits_per_mcycle;
    ]
  in
  let scenarios =
    [
      ("L1 prime+probe", Cache_channel.l1_scenario ());
      ("LLC prime+probe", Cache_channel.llc_scenario ());
      ("kernel text", Kernel_text.scenario ());
      ("downgrader", Downgrader.scenario ());
    ]
  in
  {
    Table.id = "E14";
    title = "covert-channel transmission: error rate and bandwidth";
    anchor = "methodology of Cock et al. (CCS'14)";
    headers =
      [ "channel"; "config"; "symbol errors"; "cycles/symbol"; "bits/Mcycle" ];
    rows =
      List.concat_map
        (fun sc ->
          [ row sc "none" Presets.none; row sc "full" Presets.full ])
        scenarios;
    note =
      "a trained nearest-centroid decoder transmits a 24-symbol message \
       over unseen noise seeds; with time protection on, training finds \
       nothing to separate and the bandwidth collapses to zero";
  }

(* ------------------------------------------------------------------ *)
(* E15: exhaustive small-universe verification (Sect. 5)               *)

let e15_exhaustive ?seeds:_ ?pool () =
  let open Tpro_secmodel in
  let row (name, cfg) =
    let build ~hi_prog ~seed =
      Ni_scenario.build_with_program ~cfg ~seed ~hi_prog
    in
    let r =
      match pool with
      | None -> Exhaustive.check ~build Exhaustive.default_universe
      | Some p -> Exhaustive.check_par ~pool:p ~build Exhaustive.default_universe
    in
    [
      name;
      string_of_int r.Exhaustive.programs;
      string_of_int r.Exhaustive.executions;
      string_of_int r.Exhaustive.violations;
      (if r.Exhaustive.violations = 0 then "NI proved over the universe"
       else "leaks found");
    ]
  in
  {
    Table.id = "E15";
    title = "exhaustive noninterference over every Hi program (small universe)";
    anchor = "Sect. 5 (the \"prove\" in the title)";
    headers = [ "config"; "Hi programs"; "executions"; "divergent"; "verdict" ];
    rows = [ row ("none", Presets.none); row ("full", Presets.full) ];
    note =
      "every program over a 7-instruction alphabet (length 3) under two \
       latency functions: a complete, not sampled, universal statement";
  }

(* ------------------------------------------------------------------ *)
(* E16: mutual noninterference between three domains (Sect. 2)         *)

let e16_mutual ?seeds:_ () =
  let row (name, cfg) =
    let c = Mutual.check ~cfg () in
    [
      name;
      (if c.Tpro_secmodel.Proofs.holds then "holds" else "VIOLATED");
      (Tpro_secmodel.Proofs.detail_text c.Tpro_secmodel.Proofs.detail);
    ]
  in
  {
    Table.id = "E16";
    title = "mutual noninterference: three mutually distrusting domains";
    anchor = "Sect. 2 (no hierarchical policy assumed)";
    headers = [ "config"; "verdict"; "evidence" ];
    rows = [ row ("none", Presets.none); row ("full", Presets.full) ];
    note =
      "Hi/Lo are roles relative to a secret: each domain's secret is \
       varied in turn and every other domain must observe nothing";
  }

(* ------------------------------------------------------------------ *)
(* E17: branch predictor (Sect. 3.1)                                   *)

let e17_branch_predictor ?(seeds = default_seeds) ?pool () =
  capacity_table ?pool ~seeds ~id:"E17"
    ~title:"branch-predictor training channel"
    ~anchor:"Sect. 3.1 (predictor state; the substrate Spectre poisons)"
    ~note:
      "the Trojan trains aliasing pattern-history entries; the spy's own \
       branches then mispredict at a secret-dependent rate - core-local \
       flushable state, closed exactly by flush_on_switch"
    (Bp_channel.scenario ())
    [
      ("none", Presets.none);
      ("full\\flush", Presets.without_flush);
      ("full", Presets.full);
    ]

(* ------------------------------------------------------------------ *)
(* E19: true side channel - AES-style table lookup (Sect. 3.1)         *)

let e19_side_channel ?(seeds = default_seeds) ?pool () =
  capacity_table ?pool ~seeds ~id:"E19"
    ~title:"table-lookup side channel: victim does not cooperate"
    ~anchor:"Sect. 3.1 (secret-derived array index; Osvik et al.)"
    ~note:
      "the victim's program text is identical for every secret - the        secret is data (a register) indexing a table; the spy recovers the        index bits from which cache set went missing, exactly the paper's        side-channel description; closed by flushing like all core-local        state"
    (Side_channel.scenario ())
    [
      ("none", Presets.none);
      ("colour-only", Presets.colour_only);
      ("flush+pad", Presets.flush_pad);
      ("full", Presets.full);
    ]

(* ------------------------------------------------------------------ *)
(* E18: the price of time protection (overhead vs slice length)        *)

let e18_workload ~seed ~cfg ~slice =
  let machine_config =
    {
      Machine.default_config with
      Machine.lat = Latency.with_seed Latency.default seed;
    }
  in
  let pad = Wcet.recommended_pad ~max_compute:100 machine_config in
  let k = Kernel.create ~machine_config cfg in
  let mk_domain buf =
    let d = Kernel.create_domain k ~slice ~pad_cycles:pad () in
    Kernel.map_region k d ~vbase:buf ~pages:4;
    let work =
      Array.init 3_000 (fun i ->
          if i mod 3 = 0 then Program.Compute 20
          else Program.Load (buf + (i * 192 mod (4 * 4096))))
    in
    ignore (Kernel.spawn k d (Program.halted work));
    d
  in
  ignore (mk_domain 0x2000_0000);
  ignore (mk_domain 0x3000_0000);
  Kernel.run ~max_steps:400_000 k;
  Machine.now (Kernel.machine k) ~core:0

let e18_overhead ?(seeds = [ 0; 1; 2 ]) () =
  let mean l = List.fold_left ( + ) 0 l / List.length l in
  let rows =
    List.map
      (fun slice ->
        let t cfg = mean (List.map (fun seed -> e18_workload ~seed ~cfg ~slice) seeds) in
        let base = t Presets.none in
        let protected_ = t Presets.full in
        [
          string_of_int slice;
          string_of_int base;
          string_of_int protected_;
          Printf.sprintf "%.0f%%"
            (100.
            *. (float_of_int (protected_ - base) /. float_of_int base));
        ])
      [ 5_000; 10_000; 20_000; 50_000; 100_000 ]
  in
  {
    Table.id = "E18";
    title = "the price of time protection: workload completion time";
    anchor = "overhead shape of Ge et al. (EuroSys'19)";
    headers =
      [ "slice (cycles)"; "none"; "full TP"; "overhead" ];
    rows;
    note =
      "two compute/memory domains run to completion; padding and flushing \
       dominate at short slices and amortise as the slice grows, until \
       deterministic delivery's quantisation to slice boundaries bites at \
       very long slices - the trade the system designer tunes";
  }

(* ------------------------------------------------------------------ *)
(* E20: branch target buffer - a resource added through the registry    *)

let e20_btb ?(seeds = default_seeds) ?pool () =
  capacity_table ?pool ~seeds ~id:"E20"
    ~title:"branch-target-buffer priming channel (registry-added resource)"
    ~anchor:"Sect. 5.1 (the taxonomy is extensible: new flushable state)"
    ~note:
      "the BTB exists only through the machine's resource registry \
       (btb_entries); the switch flush resets it because the kernel \
       flushes whatever the registry lists as flushable - no per-layer \
       wiring, and flush_on_switch closes the channel like any other \
       core-local state"
    (Btb_channel.scenario ())
    [
      ("none", Presets.none);
      ("full\\flush", Presets.without_flush);
      ("full", Presets.full);
    ]

(* ------------------------------------------------------------------ *)

(* The suite as thunks, so [all] and [all_par] share one definition.
   [pool], when given, additionally fans each capacity table's trial grid
   and E15's exhaustive sweep over the same domains. *)
let suite ~seeds ?pool () =
  [
    (fun () -> e1_downgrader ~seeds ?pool ());
    (fun () -> e2_l1_prime_probe ~seeds ?pool ());
    (fun () -> e3_llc_prime_probe ~seeds ?pool ());
    (fun () -> e4_switch_latency ~seeds ());
    (fun () -> e5_kernel_text ~seeds ?pool ());
    (fun () -> e6_interrupts ~seeds ?pool ());
    (fun () -> e7_proofs ());
    (fun () -> e8_tlb ~seeds ?pool ());
    (fun () -> e9_interconnect ~seeds ?pool ());
    (fun () -> e10_colours ());
    (fun () -> e11_padding_strategies ~seeds ());
    (fun () -> e12_smt ~seeds ?pool ());
    (fun () -> e13_flush_reload ~seeds ?pool ());
    (fun () -> e14_bandwidth ());
    (fun () -> e15_exhaustive ?pool ());
    (fun () -> e16_mutual ());
    (fun () -> e17_branch_predictor ~seeds ?pool ());
    (fun () -> e18_overhead ());
    (fun () -> e19_side_channel ~seeds ?pool ());
    (fun () -> e20_btb ~seeds ?pool ());
  ]

let all ?(seeds = default_seeds) () =
  List.map (fun f -> f ()) (suite ~seeds ())

let all_par ?(seeds = default_seeds) ?pool ?domains () =
  let run p =
    Tpro_engine.Pool.map p (fun f -> f ()) (suite ~seeds ~pool:p ())
  in
  match pool with
  | Some p -> run p
  | None -> Tpro_engine.Pool.with_pool ?domains run

let ids =
  [ "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e7"; "e8"; "e9"; "e10"; "e11";
    "e12"; "e13"; "e14"; "e15"; "e16"; "e17"; "e18"; "e19"; "e20" ]

(* ------------------------------------------------------------------ *)
(* Supervised sweep with checkpoint/resume.

   One task per experiment table, run through the supervisor so a
   raising table costs one [Error] row instead of the sweep, and the
   trial grids inside each table still fan out over the supervisor's
   pool.  Completed tables are serialised into the checkpoint
   (exact-round-trip, see [Table.serialise]), so a resumed sweep
   re-renders them byte-identically without recomputing. *)

module Supervisor = Tpro_engine.Supervisor
module Checkpoint = Tpro_engine.Checkpoint

let sweep_payload ~seeds completed =
  String.concat "\n"
    ("kind exp"
    :: ("seeds " ^ String.concat "," (List.map string_of_int seeds))
    :: List.map
         (fun (id, tbl) ->
           "table " ^ id ^ " " ^ Checkpoint.escape (Table.serialise tbl))
         completed)
  ^ "\n"

let parse_sweep ~seeds payload =
  let kind = ref None and pseeds = ref None and tables = ref [] in
  let bad = ref None in
  List.iter
    (fun line ->
      if !bad = None && String.trim line <> "" then
        match String.index_opt line ' ' with
        | None -> bad := Some ("malformed state line: " ^ line)
        | Some i -> (
          let k = String.sub line 0 i
          and v = String.sub line (i + 1) (String.length line - i - 1) in
          match k with
          | "kind" -> kind := Some v
          | "seeds" -> pseeds := Some v
          | "table" -> (
            match String.index_opt v ' ' with
            | None -> bad := Some "malformed table entry"
            | Some j -> (
              let id = String.sub v 0 j
              and body = String.sub v (j + 1) (String.length v - j - 1) in
              match Checkpoint.unescape body with
              | None -> bad := Some ("malformed escape in table " ^ id)
              | Some body -> (
                match Table.deserialise body with
                | Ok tbl -> tables := (id, tbl) :: !tables
                | Error e ->
                  bad := Some (Printf.sprintf "table %s: %s" id e))))
          | _ -> bad := Some ("unknown state key `" ^ k ^ "`")))
    (String.split_on_char '\n' payload);
  match !bad with
  | Some msg -> Error msg
  | None ->
    if !kind <> Some "exp" then
      Error "checkpoint is not an experiment sweep"
    else if
      !pseeds <> Some (String.concat "," (List.map string_of_int seeds))
    then Error "checkpoint was written for different seeds"
    else Ok (List.rev !tables)

type sweep = {
  tables : (string * (Table.t, Supervisor.task_error) result) list;
  sweep_resumed : int;  (** tables reused from the checkpoint *)
  sweep_notes : string list;
}

let run_supervised ?(seeds = default_seeds) ~sup ?checkpoint
    ?(resume = false) ?only () =
  let notes = ref [] in
  let note msg = notes := msg :: !notes in
  let loaded =
    match (resume, checkpoint) with
    | true, Some path -> (
      match Checkpoint.load ~path with
      | Error (Checkpoint.Io msg) ->
        note
          (Printf.sprintf "no checkpoint to resume (%s); starting from scratch"
             msg);
        []
      | Error e ->
        note
          (Printf.sprintf
             "checkpoint rejected (%s); restarting sweep from scratch"
             (Checkpoint.error_to_string e));
        []
      | Ok payload -> (
        match parse_sweep ~seeds payload with
        | Error msg ->
          note
            (Printf.sprintf
               "checkpoint rejected (%s); restarting sweep from scratch" msg);
          []
        | Ok tables ->
          note
            (Printf.sprintf "resumed sweep: %d table%s already computed"
               (List.length tables)
               (if List.length tables = 1 then "" else "s"));
          tables))
    | _ -> []
  in
  let pool = Supervisor.pool sup in
  let selected =
    let all = List.combine ids (suite ~seeds ?pool ()) in
    match only with
    | None -> all
    | Some keep ->
      List.filter
        (fun (id, _) -> List.mem (String.lowercase_ascii id) keep)
        all
  in
  (* [completed] is newest-first; the payload reverses it back into
     completion order *)
  let completed =
    ref
      (List.rev
         (List.filter (fun (id, _) -> List.mem_assoc id selected) loaded))
  in
  let reused = List.length !completed in
  let save_state () =
    match checkpoint with
    | None -> ()
    | Some path ->
      Supervisor.checkpoint_save sup ~path
        (sweep_payload ~seeds (List.rev !completed))
  in
  let tables =
    List.mapi
      (fun i (id, thunk) ->
        match List.assoc_opt id !completed with
        | Some tbl -> (id, Ok tbl)
        | None -> (
          let r =
            match
              Supervisor.run sup ~label:"experiment-table"
                ~key:(fun _ -> i)
                (fun ~fuel () ->
                  Supervisor.Fuel.burn fuel;
                  thunk ())
                [ () ]
            with
            | [ r ] -> r
            | _ -> assert false
          in
          (match r with
          | Ok tbl ->
            completed := (id, tbl) :: !completed;
            save_state ()
          | Error _ -> ());
          (id, r)))
      selected
  in
  { tables; sweep_resumed = reused; sweep_notes = List.rev !notes }

let by_id id =
  match String.lowercase_ascii id with
  | "e1" -> Some (fun ?seeds ?pool () -> e1_downgrader ?seeds ?pool ())
  | "e2" -> Some (fun ?seeds ?pool () -> e2_l1_prime_probe ?seeds ?pool ())
  | "e3" -> Some (fun ?seeds ?pool () -> e3_llc_prime_probe ?seeds ?pool ())
  | "e4" -> Some (fun ?seeds ?pool:_ () -> e4_switch_latency ?seeds ())
  | "e5" -> Some (fun ?seeds ?pool () -> e5_kernel_text ?seeds ?pool ())
  | "e6" -> Some (fun ?seeds ?pool () -> e6_interrupts ?seeds ?pool ())
  | "e7" -> Some (fun ?seeds:_ ?pool:_ () -> e7_proofs ())
  | "e8" -> Some (fun ?seeds ?pool () -> e8_tlb ?seeds ?pool ())
  | "e9" -> Some (fun ?seeds ?pool () -> e9_interconnect ?seeds ?pool ())
  | "e10" -> Some (fun ?seeds:_ ?pool:_ () -> e10_colours ())
  | "e11" -> Some (fun ?seeds ?pool:_ () -> e11_padding_strategies ?seeds ())
  | "e12" -> Some (fun ?seeds ?pool () -> e12_smt ?seeds ?pool ())
  | "e13" -> Some (fun ?seeds ?pool () -> e13_flush_reload ?seeds ?pool ())
  | "e14" -> Some (fun ?seeds ?pool:_ () -> e14_bandwidth ?seeds ())
  | "e15" -> Some (fun ?seeds ?pool () -> e15_exhaustive ?seeds ?pool ())
  | "e16" -> Some (fun ?seeds ?pool:_ () -> e16_mutual ?seeds ())
  | "e17" -> Some (fun ?seeds ?pool () -> e17_branch_predictor ?seeds ?pool ())
  | "e18" -> Some (fun ?seeds ?pool:_ () -> e18_overhead ?seeds ())
  | "e19" -> Some (fun ?seeds ?pool () -> e19_side_channel ?seeds ?pool ())
  | "e20" -> Some (fun ?seeds ?pool () -> e20_btb ?seeds ?pool ())
  | _ -> None
