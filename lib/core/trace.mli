(** Timeline reconstruction from a kernel's event trace.

    Turns the raw event list into per-core execution segments (which
    domain occupied the core when, where the switches and their padding
    sat) plus per-domain utilisation — the view a systems person wants
    when sanity-checking a schedule, and the data behind experiment E11's
    utilisation column. *)

open Tpro_kernel

type segment = {
  core : int;
  start : int;
  finish : int;
  occupant : [ `Domain of int | `Switch of int * int ];
      (** [`Switch (from_dom, to_dom)] covers kernel entry + flush +
          padding *)
}

val timeline : Kernel.t -> segment list
(** Chronological per-core segments, reconstructed from switch events. *)

val utilisation : Kernel.t -> (int * float) list
(** Fraction of total traced wall-time each domain held a core (switch
    slots are charged to the switch, not the domain). *)

val pp : ?limit:int -> Format.formatter -> Kernel.t -> unit
(** Human-readable timeline (first [limit] segments, default 40). *)
