open Tpro_hw
open Tpro_kernel

type region = { vbase : int; pages : int }

type domain_spec = {
  name : string;
  core : int;
  slice : int;
  pad : int option;
  n_colours : int;
  regions : region list;
  programs : Program.t list;
  irqs : int list;
}

let domain ?(core = 0) ?pad ?(n_colours = 1) ?(regions = []) ?(irqs = [])
    ~name ~slice programs =
  { name; core; slice; pad; n_colours; regions; programs; irqs }

type sharing = {
  from_domain : string;
  to_domain : string;
  region : region;
  at_vbase : int;
}

type spec = {
  machine : Machine.config;
  protection : Kernel.config;
  domains : domain_spec list;
  shared : sharing list;
}

let spec ?(machine = Machine.default_config) ?(shared = []) ~protection
    domains =
  { machine; protection; domains; shared }

type t = {
  sys_kernel : Kernel.t;
  by_name : (string * (Domain.t * Thread.t list)) list;
}

let build s =
  let names = List.map (fun d -> d.name) s.domains in
  if List.length names <> List.length (List.sort_uniq compare names) then
    invalid_arg "System.build: duplicate domain names";
  let k = Kernel.create ~machine_config:s.machine s.protection in
  let default_pad = Wcet.recommended_pad s.machine in
  let by_name =
    List.map
      (fun d ->
        let dom =
          Kernel.create_domain k ~core:d.core ~n_colours:d.n_colours
            ~slice:d.slice
            ~pad_cycles:(Option.value ~default:default_pad d.pad)
            ()
        in
        List.iter
          (fun r -> Kernel.map_region k dom ~vbase:r.vbase ~pages:r.pages)
          d.regions;
        List.iter (fun irq -> Kernel.set_irq_owner k ~irq ~dom) d.irqs;
        let threads = List.map (Kernel.spawn k dom) d.programs in
        (d.name, (dom, threads)))
      s.domains
  in
  let find name =
    match List.assoc_opt name by_name with
    | Some (dom, _) -> dom
    | None -> invalid_arg ("System.build: unknown domain " ^ name)
  in
  List.iter
    (fun sh ->
      Kernel.share_region k ~owner:(find sh.from_domain)
        ~guest:(find sh.to_domain) ~vbase:sh.region.vbase
        ~pages:sh.region.pages ~guest_vbase:sh.at_vbase)
    s.shared;
  { sys_kernel = k; by_name }

let kernel t = t.sys_kernel

let lookup t name =
  match List.assoc_opt name t.by_name with
  | Some entry -> entry
  | None -> invalid_arg ("System: unknown domain " ^ name)

let domain_named t name = fst (lookup t name)
let threads_of t name = snd (lookup t name)

let run ?max_steps t = Kernel.run ?max_steps t.sys_kernel

let observations t name =
  List.map Thread.observations (threads_of t name)
