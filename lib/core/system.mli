(** Declarative system construction.

    The kernel API builds systems imperatively (create domain, map
    region, spawn, ...); this module lets a user describe the whole
    system — machine, protection configuration, domains with their
    memory, threads, interrupts and shared regions — as one value, and
    builds it in a single call.  Domains are addressed by name
    afterwards.

    Padding attributes may be left out, in which case the WCET analysis
    ({!Wcet.recommended_pad}) supplies a provably sufficient value. *)

open Tpro_hw
open Tpro_kernel

type region = { vbase : int; pages : int }

type domain_spec = {
  name : string;
  core : int;              (** default 0 *)
  slice : int;
  pad : int option;        (** [None]: use the WCET analysis *)
  n_colours : int;         (** default 1 *)
  regions : region list;
  programs : Program.t list;  (** one thread per program *)
  irqs : int list;         (** interrupt sources this domain owns *)
}

val domain :
  ?core:int ->
  ?pad:int ->
  ?n_colours:int ->
  ?regions:region list ->
  ?irqs:int list ->
  name:string ->
  slice:int ->
  Program.t list ->
  domain_spec

type sharing = {
  from_domain : string;
  to_domain : string;
  region : region;     (** must be one of [from_domain]'s regions *)
  at_vbase : int;
}

type spec = {
  machine : Machine.config;
  protection : Kernel.config;
  domains : domain_spec list;
  shared : sharing list;
}

val spec :
  ?machine:Machine.config ->
  ?shared:sharing list ->
  protection:Kernel.config ->
  domain_spec list ->
  spec

type t

val build : spec -> t
(** Boots the kernel, creates everything in order, applies sharing.
    Raises [Invalid_argument] on duplicate or unknown domain names. *)

val kernel : t -> Kernel.t
val domain_named : t -> string -> Domain.t
val threads_of : t -> string -> Thread.t list
val run : ?max_steps:int -> t -> unit
val observations : t -> string -> Tpro_kernel.Event.obs list list
(** Observation trace of each of the named domain's threads. *)
