open Tpro_hw
open Tpro_kernel
open Tpro_secmodel

let n_domains = 3

let slice = 20_000
let pad = 20_000

let buf_of d = 0x2000_0000 + (d * 0x1000_0000)

let observer d =
  Program.concat
    [
      [| Program.Read_clock |];
      Tpro_channel.Prime_probe.probe ~base:(buf_of d) ~lines:12 ~line_size:64;
      [| Program.Syscall Program.Sys_null; Program.Read_clock |];
      Tpro_channel.Prime_probe.filler ~cycles:slice ~chunk:25;
      [| Program.Read_clock; Program.Halt |];
    ]

let worker ~d ~secret =
  Program.random ~syscalls:true
    (Rng.create ((d * 7919) + secret))
    ~len:80
    ~data_base:(buf_of d)
    ~data_bytes:(2 * 4096)

let build ~cfg ~seed ~secrets =
  if Array.length secrets <> n_domains then
    invalid_arg "Mutual.build: need one secret per domain";
  let machine_config = Ni_scenario.machine_config ~seed in
  let k = Kernel.create ~machine_config cfg in
  let observers =
    Array.init n_domains (fun d ->
        let dom = Kernel.create_domain k ~slice ~pad_cycles:pad () in
        Kernel.map_region k dom ~vbase:(buf_of d) ~pages:2;
        let obs_thread = Kernel.spawn k dom (observer d) in
        ignore (Kernel.spawn k dom (worker ~d ~secret:secrets.(d)));
        obs_thread)
  in
  (k, observers)

let run_views ~cfg ~seed ~secrets =
  let k, observers = build ~cfg ~seed ~secrets in
  Array.iter (fun th -> Thread.set_traced th true) observers;
  Kernel.run ~max_steps:500_000 k;
  Array.map
    (fun th -> (Observation.of_thread th, Thread.cost_trace th))
    observers

let check ?(seeds = [ 0; 1 ]) ?(secret_values = [ 0; 1; 2 ]) ~cfg () =
  let base_secrets = Array.make n_domains 0 in
  let violations = ref [] in
  let comparisons = ref 0 in
  List.iter
    (fun seed ->
      let base = run_views ~cfg ~seed ~secrets:base_secrets in
      for d = 0 to n_domains - 1 do
        List.iter
          (fun v ->
            if v <> base_secrets.(d) then begin
              let secrets = Array.copy base_secrets in
              secrets.(d) <- v;
              let view = run_views ~cfg ~seed ~secrets in
              for o = 0 to n_domains - 1 do
                if o <> d then begin
                  incr comparisons;
                  if view.(o) <> base.(o) then
                    violations :=
                      Printf.sprintf
                        "domain %d's secret (0 -> %d) visible to domain %d under seed %d"
                        d v o seed
                      :: !violations
                end
              done
            end)
          secret_values
      done)
    seeds;
  let name = "mutual-NI" in
  let description =
    "no domain's secret influences any other domain's observations, for \
     every choice of which domain holds the secret"
  in
  match !violations with
  | [] ->
    {
      Proofs.name;
      description;
      holds = true;
      detail =
        Proofs.Stats
          (Printf.sprintf "%d cross-domain comparisons, all identical"
             !comparisons);
    }
  | v :: _ ->
    {
      Proofs.name;
      description;
      holds = false;
      detail =
        Proofs.Counter_example
          (Printf.sprintf "%d/%d comparisons diverged; first: %s"
             (List.length !violations) !comparisons v);
    }
