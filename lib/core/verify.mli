(** Top-level verification entry point: the executable analogue of
    "proving time protection" for a given kernel configuration.

    Runs the full Sect. 5.2 proof stack over the standard scenario by
    deriving the composed time-protection theorem ({!Tpro_secmodel.Theorem})
    from the machine's resource registry — one unwinding lemma per
    registered resource plus the kernel-level cases — and reconstructing
    the classic check list (Cases 1, 2a, 2b, top-level noninterference,
    partitioning invariants, unwinding) from the same evidence, plus the
    aISA taxonomy audit of Sect. 4.1/5.1.  Out-of-scope resources are
    acknowledged by the audit itself, so a registry entry that is neither
    defended nor audited refutes the theorem. *)

open Tpro_kernel
open Tpro_secmodel

type report = {
  config_name : string;
  aisa_ok : bool;
  taxonomy : (Mstate.component * Mstate.classification * string) list;
      (** component, class, defence relied upon *)
  checks : Proofs.check list;
  theorem : Theorem.t;
      (** the composed per-lemma verdicts behind [checks] *)
  all_hold : bool;
}

val run :
  ?seeds:int list -> ?secrets:int list -> cfg:Kernel.config -> unit -> report
(** Defaults: 3 seeds, 4 secrets. *)

val pp_report : Format.formatter -> report -> unit
