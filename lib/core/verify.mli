(** Top-level verification entry point: the executable analogue of
    "proving time protection" for a given kernel configuration.

    Runs the full Sect. 5.2 proof stack (Cases 1, 2a, 2b, top-level
    noninterference, partitioning invariants) over the standard scenario,
    quantified over latency-function seeds, plus the aISA taxonomy audit
    of Sect. 4.1/5.1. *)

open Tpro_kernel
open Tpro_secmodel

type report = {
  config_name : string;
  aisa_ok : bool;
  taxonomy : (Mstate.component * Mstate.classification * string) list;
      (** component, class, defence relied upon *)
  checks : Proofs.check list;
  all_hold : bool;
}

val run :
  ?seeds:int list -> ?secrets:int list -> cfg:Kernel.config -> unit -> report
(** Defaults: 3 seeds, 4 secrets. *)

val pp_report : Format.formatter -> report -> unit
