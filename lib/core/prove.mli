(** Supervised derivation of the composed time-protection theorem — the
    engine behind [tpro prove].

    Evidence collection (one task per preset x latency seed, each a
    {!Tpro_secmodel.Theorem.collect}) fans out over the supervisor with
    crash-safe checkpoint/resume; composition — per-resource unwinding
    lemmas, kernel lemmas, scope acknowledgements and the per-kind
    exhaustive small-model lemmas — happens at the end.  Tasks are pure
    functions of (preset, seed, secrets), so a resumed run's theorem is
    bit-identical to an uninterrupted one's. *)

open Tpro_kernel
open Tpro_secmodel

type report = {
  preset : string;
  theorem : Theorem.t;
  checks : Proofs.check list;
      (** the classic six-obligation list, reconstructed from the same
          evidence *)
  lost : (int * string) list;
      (** (task index, error) for evidence lost to supervised failures *)
}

type outcome = {
  reports : report list;  (** one per preset, in input order *)
  notes : string list;  (** resume/checkpoint notes for stderr *)
  resumed_tasks : int;
}

val run :
  sup:Tpro_engine.Supervisor.t ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume:bool ->
  ?acknowledge:string list ->
  ?exhaustive:bool ->
  ?seeds:int list ->
  ?secrets:int list ->
  presets:(string * Kernel.config) list ->
  unit ->
  outcome
(** Defaults: checkpoint every task, seeds/secrets as in {!Ni_scenario},
    exhaustive small-model lemmas on.  [acknowledge] names out-of-scope
    resources whose [scope:] lemmas are accepted; any other out-of-scope
    registration refutes the composed theorem. *)

val pp_report : Format.formatter -> report -> unit

val to_json : report list -> string
(** The lemma-verdict artifact ([tpro prove --json]): one object per
    preset with the full per-lemma verdict table. *)
