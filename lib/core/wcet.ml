open Tpro_hw
open Tpro_kernel

let worst_bus_wait (cfg : Machine.config) =
  let service = cfg.Machine.bus_service in
  let queue_behind = (cfg.Machine.n_cores - 1) * service in
  match cfg.Machine.bus_mode with
  | Interconnect.Shared -> queue_behind + service
  | Interconnect.Partitioned { slot; n_domains } ->
    (* missed the slot entirely, wait a whole frame *)
    (slot * n_domains) + service
  | Interconnect.Throttled { window; _ } ->
    (* rate cap may defer to the next window, then queue *)
    window + queue_behind + service

let jitters (cfg : Machine.config) n = n * cfg.Machine.lat.Latency.jitter_mag

(* A physical line access missing at every level. *)
let worst_line_fetch (cfg : Machine.config) =
  let l = cfg.Machine.lat in
  let l2 = match cfg.Machine.l2_geom with Some _ -> l.Latency.l2_hit | None -> 0 in
  l.Latency.l1_hit + l2 + l.Latency.llc_hit + l.Latency.mem_lat
  + worst_bus_wait cfg
  + jitters cfg 3

let worst_data_access (cfg : Machine.config) =
  cfg.Machine.lat.Latency.walk + jitters cfg 1 + worst_line_fetch cfg

let worst_flush (cfg : Machine.config) =
  let l = cfg.Machine.lat in
  let lines g = g.Cache.sets * g.Cache.ways in
  let dirty_capacity =
    lines cfg.Machine.l1_geom
    + (match cfg.Machine.l2_geom with Some g -> lines g | None -> 0)
  in
  l.Latency.flush_base + (dirty_capacity * l.Latency.dirty_wb) + jitters cfg 1

let longest_path_lines =
  List.fold_left
    (fun acc kind -> max acc (Kclone.path_of_kind kind).Kclone.n_lines)
    0 Kclone.trap_kinds

let worst_trap (cfg : Machine.config) =
  (longest_path_lines + Kclone.data_lines) * worst_line_fetch cfg

let worst_instruction ~max_compute (cfg : Machine.config) =
  let fetch = worst_data_access cfg in
  fetch + max (max (worst_data_access cfg) (worst_trap cfg)) max_compute

let recommended_pad ?(max_compute = 10_000) (cfg : Machine.config) =
  let overshoot = worst_instruction ~max_compute cfg in
  let switch_entry = worst_trap cfg in
  let switch_exit = worst_trap cfg in
  overshoot + switch_entry + worst_flush cfg + switch_exit + jitters cfg 8
