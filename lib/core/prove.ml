(* `tpro prove`: derive the composed time-protection theorem for one or
   more presets by fanning evidence collection over the supervisor.

   A task is one (preset, latency seed): it runs [Theorem.collect] —
   the five kernel obligations plus one full unwinding sweep per secret
   pair — and returns the serialised evidence.  Tasks are pure functions
   of (preset, seed, secrets), so a resumed run recomposes a theorem
   bit-identical to an uninterrupted one; the checkpoint stores each
   task's evidence blob as a single escaped line.  Composition (reading
   verdicts off the evidence, scope acknowledgements, the per-kind
   exhaustive small-model lemmas) happens at the end, in-process. *)

module Supervisor = Tpro_engine.Supervisor
module Checkpoint = Tpro_engine.Checkpoint
open Tpro_secmodel

type report = {
  preset : string;
  theorem : Theorem.t;
  checks : Proofs.check list;
  lost : (int * string) list;
      (** (task index, error) for evidence lost to supervised failures *)
}

type outcome = {
  reports : report list;
  notes : string list;
  resumed_tasks : int;
}

(* The proving scenario is the standard one *with* the BTB enabled, so
   every resource kind the hardware model can register — cache, TLB,
   predictor, prefetcher, interconnect — appears in the registry and
   auto-derives its lemma. *)
let build_for ~cfg ~seed ~secret =
  Ni_scenario.build_with ~with_btb:true ~cfg ~seed ~secret

let collect_task ~cfg ~seed ~secrets =
  Theorem.collect ~seed ~build:(fun ~secret -> build_for ~cfg ~seed ~secret)
    ~secrets ()

(* ------------------------------------------------------------------ *)
(* Checkpoint format: header lines pinning the campaign parameters,
   then one line per settled task holding its escaped evidence blob. *)

let header ~seeds ~secrets ~presets =
  [
    "kind prove";
    "seeds " ^ String.concat "," (List.map string_of_int seeds);
    "secrets " ^ String.concat "," (List.map string_of_int secrets);
    "presets " ^ String.concat "," (List.map fst presets);
  ]

let state_payload ~seeds ~secrets ~presets ~evidence =
  let tasks =
    List.sort compare (Hashtbl.fold (fun i ev acc -> (i, ev) :: acc) evidence [])
  in
  String.concat "\n"
    (header ~seeds ~secrets ~presets
    @ List.map
        (fun (i, ev) ->
          Printf.sprintf "task %d %s" i
            (Checkpoint.escape (Theorem.evidence_to_string ev)))
        tasks)
  ^ "\n"

let parse_state ~seeds ~secrets ~presets payload =
  let expected = header ~seeds ~secrets ~presets in
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' payload)
  in
  let rec split_header hs ls =
    match (hs, ls) with
    | [], rest -> Ok rest
    | h :: _, [] -> Error (Printf.sprintf "checkpoint truncated before `%s`" h)
    | h :: hs', l :: ls' ->
      if l = h then split_header hs' ls'
      else Error (Printf.sprintf "checkpoint parameter mismatch: `%s`" l)
  in
  match split_header expected lines with
  | Error _ as e -> e
  | Ok task_lines ->
    let tbl = Hashtbl.create 16 in
    let bad = ref None in
    (* "task <idx> <blob>": the escaped blob is newline/tab-free but
       contains spaces, so split off exactly the first two tokens *)
    let split3 line =
      match String.index_opt line ' ' with
      | None -> None
      | Some i -> (
        let rest = String.sub line (i + 1) (String.length line - i - 1) in
        match String.index_opt rest ' ' with
        | None -> None
        | Some j ->
          Some
            ( String.sub line 0 i,
              String.sub rest 0 j,
              String.sub rest (j + 1) (String.length rest - j - 1) ))
    in
    List.iter
      (fun line ->
        if !bad = None then
          match split3 line with
          | Some ("task", idx, blob) -> (
            match
              (int_of_string_opt idx, Checkpoint.unescape blob)
            with
            | Some i, Some ev_str -> (
              match Theorem.evidence_of_string ev_str with
              | Ok ev -> Hashtbl.replace tbl i ev
              | Error m ->
                bad := Some (Printf.sprintf "task %s evidence: %s" idx m))
            | _ -> bad := Some ("malformed task line: " ^ line))
          | Some _ | None -> bad := Some ("unknown state line: " ^ line))
      task_lines;
    (match !bad with Some m -> Error m | None -> Ok tbl)

(* ------------------------------------------------------------------ *)
(* Composition for one preset, given its per-seed evidence. *)

let exhaustive_lemmas ~cfg ~seed =
  let machine =
    Tpro_hw.Machine.create
      (Ni_scenario.machine_config_with ~with_btb:true ~seed)
  in
  List.map
    (fun ku ->
      let result =
        Exhaustive.check
          ~build:(fun ~hi_prog ~seed ->
            Ni_scenario.build_with_program_on ~with_btb:true ~cfg ~seed
              ~hi_prog)
          ku.Exhaustive.ku_universe
      in
      Theorem.lemma_of_exhaustive ~kind_label:ku.Exhaustive.ku_label
        ~resources:ku.Exhaustive.ku_resources result)
    (Exhaustive.kind_universes ~machine ())

let compose_preset ?(acknowledge = []) ?(exhaustive = true) ~name ~cfg ~seeds
    ~secrets ~evidence ~lost () =
  let first_seed = match seeds with s :: _ -> s | [] -> 0 in
  let first_secret = match secrets with s :: _ -> s | [] -> 0 in
  let subjects =
    Theorem.subjects_of_run (build_for ~cfg ~seed:first_seed ~secret:first_secret)
  in
  let checks = Theorem.checks_of_evidence ~secrets ~evidence in
  let lemmas =
    Theorem.resource_lemmas ~acknowledge ~subjects ~evidence ()
    @ Theorem.kernel_lemmas ~checks ~evidence
    @ (if exhaustive then exhaustive_lemmas ~cfg ~seed:first_seed else [])
  in
  { preset = name; theorem = Theorem.compose lemmas; checks; lost }

(* ------------------------------------------------------------------ *)

let run ~sup ?checkpoint ?(checkpoint_every = 1) ?(resume = false)
    ?(acknowledge = []) ?(exhaustive = true) ?(seeds = Ni_scenario.default_seeds)
    ?(secrets = Ni_scenario.default_secrets) ~presets () =
  let notes = ref [] in
  let note msg = notes := msg :: !notes in
  (* task index i = preset (i / |seeds|), seed (i mod |seeds|) *)
  let n_seeds = List.length seeds in
  let n_tasks = List.length presets * n_seeds in
  let task_cfg i = snd (List.nth presets (i / n_seeds)) in
  let task_seed i = List.nth seeds (i mod n_seeds) in
  let evidence : (int, Theorem.seed_evidence) Hashtbl.t =
    match (resume, checkpoint) with
    | true, Some path -> (
      match Checkpoint.load ~path with
      | Error (Checkpoint.Io msg) ->
        note
          (Printf.sprintf "no checkpoint to resume (%s); starting from scratch"
             msg);
        Hashtbl.create 16
      | Error e ->
        note
          (Printf.sprintf "checkpoint rejected (%s); restarting from scratch"
             (Checkpoint.error_to_string e));
        Hashtbl.create 16
      | Ok payload -> (
        match parse_state ~seeds ~secrets ~presets payload with
        | Error msg ->
          note
            (Printf.sprintf "checkpoint rejected (%s); restarting from scratch"
               msg);
          Hashtbl.create 16
        | Ok tbl ->
          Hashtbl.iter
            (fun i _ -> if i < 0 || i >= n_tasks then Hashtbl.remove tbl i)
            (Hashtbl.copy tbl);
          note
            (Printf.sprintf "resumed with %d/%d tasks already collected"
               (Hashtbl.length tbl) n_tasks);
          tbl))
    | _ -> Hashtbl.create 16
  in
  let resumed_tasks = Hashtbl.length evidence in
  let save_state () =
    match checkpoint with
    | None -> ()
    | Some path ->
      Supervisor.checkpoint_save sup ~path
        (state_payload ~seeds ~secrets ~presets ~evidence)
  in
  let todo =
    List.filter
      (fun i -> not (Hashtbl.mem evidence i))
      (List.init n_tasks Fun.id)
  in
  let lost = Hashtbl.create 4 in
  let every = max 1 checkpoint_every in
  let rec drive = function
    | [] -> ()
    | batch_src ->
      let rec take n = function
        | x :: r when n > 0 ->
          let xs, rest = take (n - 1) r in
          (x :: xs, rest)
        | rest -> ([], rest)
      in
      let batch, rest = take every batch_src in
      let results =
        Supervisor.run sup ~label:"prove-evidence" ~key:Fun.id
          (fun ~fuel i ->
            Supervisor.Fuel.burn fuel;
            collect_task ~cfg:(task_cfg i) ~seed:(task_seed i) ~secrets)
          batch
      in
      List.iter2
        (fun i -> function
          | Ok ev -> Hashtbl.replace evidence i ev
          | Error e ->
            Hashtbl.replace lost i (Supervisor.task_error_to_string e))
        batch results;
      save_state ();
      drive rest
  in
  drive todo;
  let reports =
    List.mapi
      (fun p (name, cfg) ->
        let ev =
          List.filter_map
            (fun s -> Hashtbl.find_opt evidence ((p * n_seeds) + s))
            (List.init n_seeds Fun.id)
        in
        let lost =
          List.filter_map
            (fun s ->
              let i = (p * n_seeds) + s in
              Option.map (fun m -> (i, m)) (Hashtbl.find_opt lost i))
            (List.init n_seeds Fun.id)
        in
        compose_preset ~acknowledge ~exhaustive ~name ~cfg ~seeds ~secrets
          ~evidence:ev ~lost ())
      presets
  in
  { reports; notes = List.rev !notes; resumed_tasks }

(* ------------------------------------------------------------------ *)

let pp_report ppf r =
  Format.fprintf ppf "@[<v>theorem for preset %s:@,%a@]" r.preset Theorem.pp
    r.theorem

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json reports =
  let lemma_json l =
    Printf.sprintf
      "      {\"id\": \"%s\", \"subject\": \"%s\", \"mechanism\": \"%s\", \
       \"verdict\": \"%s\", \"detail\": \"%s\"}"
      (json_escape l.Lemma.lid)
      (json_escape l.Lemma.subject)
      (json_escape (Lemma.mechanism_label l.Lemma.mechanism))
      (json_escape (Lemma.verdict_label l))
      (json_escape (Lemma.detail l))
  in
  let report_json r =
    Printf.sprintf
      "  {\"preset\": \"%s\", \"holds\": %b, \"refuted\": %d, \
       \"unacknowledged\": %d, \"lost_tasks\": %d,\n\
      \   \"lemmas\": [\n%s\n   ]}"
      (json_escape r.preset) r.theorem.Theorem.holds
      (List.length r.theorem.Theorem.refuted)
      (List.length r.theorem.Theorem.unacknowledged)
      (List.length r.lost)
      (String.concat ",\n" (List.map lemma_json r.theorem.Theorem.lemmas))
  in
  Printf.sprintf "{\"schema\": \"tpro-prove/1\", \"presets\": [\n%s\n]}\n"
    (String.concat ",\n" (List.map report_json reports))
