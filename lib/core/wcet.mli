(** Worst-case latency analysis of the machine model.

    The paper (Sect. 4.2/5.2) treats the padding value as "obtained by a
    separate analysis" and merely *assumes* it is sufficient; the proof
    only checks the padding is applied.  This module is that separate
    analysis for our model: closed-form worst-case bounds for each
    latency source, composed into a recommended padding attribute.  The
    accompanying property test drives random workloads and checks that a
    kernel padded by {!recommended_pad} never overruns. *)

open Tpro_hw

val worst_bus_wait : Machine.config -> int
(** Worst interconnect queueing + service for one transfer, per mode
    (each core has at most one outstanding request). *)

val worst_data_access : Machine.config -> int
(** Page walk + full miss chain (L1, optional L2, LLC, DRAM, bus) with
    maximal jitter at every level. *)

val worst_flush : Machine.config -> int
(** Core-local flush with every L1D/L2 line dirty and maximal jitter. *)

val worst_trap : Machine.config -> int
(** Most expensive kernel entry: instruction fetch, longest handler text
    window, full kernel-data pass — all misses. *)

val worst_instruction : max_compute:int -> Machine.config -> int
(** Bound on any single instruction's cost (the preemption-timer
    overshoot): fetch + the worst of {data access, trap, a [Compute]
    bounded by [max_compute]}. *)

val recommended_pad : ?max_compute:int -> Machine.config -> int
(** Padding attribute guaranteeing no overrun: timer overshoot + switch
    entry + flush + switch exit, with slack for jitter.  [max_compute]
    (default 10_000) bounds the largest [Compute] the domain's programs
    may contain. *)
