open Tpro_secmodel

type report = {
  config_name : string;
  aisa_ok : bool;
  taxonomy : (Mstate.component * Mstate.classification * string) list;
  checks : Proofs.check list;
  all_hold : bool;
}

let run ?(seeds = Ni_scenario.default_seeds)
    ?(secrets = Ni_scenario.default_secrets) ~cfg () =
  let checks =
    Proofs.all ~seeds
      ~build:(fun ~seed ~secret -> Ni_scenario.build ~cfg ~seed ~secret)
      ~secrets ()
    @ [
        Proofs.across_seeds ~seeds (fun ~seed ->
            Unwinding.check
              ~build:(fun ~secret -> Ni_scenario.build ~cfg ~seed ~secret)
              ~secrets ());
      ]
  in
  (* The taxonomy is audited on the machine the checks actually ran on
     (derived from its live resource registry), not on a hand-kept list. *)
  let machine =
    Tpro_hw.Machine.create
      (Ni_scenario.machine_config
         ~seed:(match seeds with s :: _ -> s | [] -> 0))
  in
  {
    config_name = Presets.name cfg;
    aisa_ok = Mstate.aisa_satisfied ~machine ();
    taxonomy =
      List.map
        (fun c -> (c, Mstate.classify c, Mstate.defence c))
        (Mstate.all ~machine ());
    checks;
    all_hold = List.for_all (fun c -> c.Proofs.holds) checks;
  }

let pp_report ppf r =
  Format.fprintf ppf "@[<v>verification of configuration %s@," r.config_name;
  Format.fprintf ppf "aISA contract (all in-scope state partitionable or flushable): %s@,"
    (if r.aisa_ok then "satisfied" else "VIOLATED");
  Format.fprintf ppf "state taxonomy:@,";
  List.iter
    (fun (c, cls, defence) ->
      Format.fprintf ppf "  %-18s %-14s %s@," (Mstate.name c)
        (Format.asprintf "%a" Mstate.pp_classification cls)
        defence)
    r.taxonomy;
  Format.fprintf ppf "proof obligations:@,";
  List.iter (fun c -> Format.fprintf ppf "  %a@," Proofs.pp c) r.checks;
  Format.fprintf ppf "verdict: %s@]"
    (if r.all_hold then "time protection HOLDS on the sampled universe"
     else "time protection VIOLATED")
