open Tpro_secmodel

type report = {
  config_name : string;
  aisa_ok : bool;
  taxonomy : (Mstate.component * Mstate.classification * string) list;
  checks : Proofs.check list;
  theorem : Theorem.t;
  all_hold : bool;
}

let run ?(seeds = Ni_scenario.default_seeds)
    ?(secrets = Ni_scenario.default_secrets) ~cfg () =
  (* The taxonomy is audited on the machine the checks actually ran on
     (derived from its live resource registry), not on a hand-kept list. *)
  let machine =
    Tpro_hw.Machine.create
      (Ni_scenario.machine_config
         ~seed:(match seeds with s :: _ -> s | [] -> 0))
  in
  (* Out-of-scope resources are acknowledged by the taxonomy audit
     itself: [Mstate.all] enumerates them and [aisa_satisfied] checks
     none claims protection — exactly the explicit scope acknowledgement
     the theorem demands, so the registry's own out-of-scope set is
     passed through. *)
  let acknowledge =
    List.filter_map
      (fun r ->
        match Tpro_hw.Resource.obligation r with
        | Tpro_hw.Resource.Out_of_scope -> Some (Tpro_hw.Resource.name r)
        | _ -> None)
      (Tpro_hw.Machine.core_resources machine ~core:0
      @ Tpro_hw.Machine.shared_resources machine)
  in
  let derivation =
    Theorem.derive ~acknowledge ~seeds
      ~build:(fun ~seed ~secret -> Ni_scenario.build ~cfg ~seed ~secret)
      ~secrets ()
  in
  let checks = derivation.Theorem.checks in
  {
    config_name = Presets.name cfg;
    aisa_ok = Mstate.aisa_satisfied ~machine ();
    taxonomy =
      List.map
        (fun c -> (c, Mstate.classify c, Mstate.defence c))
        (Mstate.all ~machine ());
    checks;
    theorem = derivation.Theorem.theorem;
    all_hold =
      List.for_all (fun c -> c.Proofs.holds) checks
      && derivation.Theorem.theorem.Theorem.holds;
  }

let pp_report ppf r =
  Format.fprintf ppf "@[<v>verification of configuration %s@," r.config_name;
  Format.fprintf ppf "aISA contract (all in-scope state partitionable or flushable): %s@,"
    (if r.aisa_ok then "satisfied" else "VIOLATED");
  Format.fprintf ppf "state taxonomy:@,";
  List.iter
    (fun (c, cls, defence) ->
      Format.fprintf ppf "  %-18s %-14s %s@," (Mstate.name c)
        (Format.asprintf "%a" Mstate.pp_classification cls)
        defence)
    r.taxonomy;
  Format.fprintf ppf "proof obligations:@,";
  List.iter (fun c -> Format.fprintf ppf "  %a@," Proofs.pp c) r.checks;
  Format.fprintf ppf "lemma verdicts (derived from the resource registry):@,";
  Format.fprintf ppf "%a@," Theorem.pp r.theorem;
  Format.fprintf ppf "verdict: %s@]"
    (if r.all_hold then "time protection HOLDS on the sampled universe"
     else "time protection VIOLATED")
