(** The experiment suite: one table per claim of the paper.

    The paper (a HotOS vision paper) has a single figure and no
    quantitative tables; DESIGN.md maps each of its claims to one of the
    experiments below.  Capacities are Blahut–Arimoto estimates in bits
    per channel use; "0.000" means the defence closed the channel on the
    sampled universe. *)

val default_seeds : int list
(** Latency-function seeds used as trials (default 0..7). *)

val e1_downgrader : ?seeds:int list -> ?pool:Tpro_engine.Pool.t -> unit -> Table.t
(** Figure 1 / Sect. 3.2: message arrival-time channel from the
    encryption downgrader, per configuration, plus application-level WCET
    padding (Sect. 4.3). *)

val e2_l1_prime_probe : ?seeds:int list -> ?pool:Tpro_engine.Pool.t -> unit -> Table.t
(** Sect. 3.1: prime-and-probe through the time-shared L1. *)

val e3_llc_prime_probe : ?seeds:int list -> ?pool:Tpro_engine.Pool.t -> unit -> Table.t
(** Sect. 3.1/4.1: prime-and-probe through the concurrently-shared LLC —
    flushing does not help, colouring does. *)

val e4_switch_latency : ?seeds:int list -> unit -> Table.t
(** Sect. 4.2: domain-switch cost as a function of the outgoing domain's
    dirty cache lines; raw cost varies (a channel), the padded slot is
    constant. *)

val e5_kernel_text : ?seeds:int list -> ?pool:Tpro_engine.Pool.t -> unit -> Table.t
(** Sect. 4.2: the shared kernel text channel and the clone defence. *)

val e6_interrupts : ?seeds:int list -> ?pool:Tpro_engine.Pool.t -> unit -> Table.t
(** Sect. 4.2: the interrupt channel and IRQ partitioning. *)

val e7_proofs : ?seeds:int list -> ?secrets:int list -> unit -> Table.t
(** Sect. 5.2: the proof stack (Cases 1/2a/2b, noninterference,
    invariants) under the full configuration vs. no protection. *)

val e8_tlb : ?seeds:int list -> ?pool:Tpro_engine.Pool.t -> unit -> Table.t
(** Sect. 5.3: the ASID partitioning (consistency) theorem, checked over
    random operation sequences, and the TLB *timing* channel showing that
    tagging alone is no defence. *)

val e9_interconnect : ?seeds:int list -> ?pool:Tpro_engine.Pool.t -> unit -> Table.t
(** Sect. 2: the stateless-interconnect channel survives full time
    protection; strict TDMA bandwidth partitioning closes it. *)

val e10_colours : unit -> Table.t
(** Sect. 4.1: page-colour inventory across realistic LLC geometries
    ("modern last-level caches have at least 64 colours"). *)

val e11_padding_strategies : ?seeds:int list -> unit -> Table.t
(** Sect. 4.3: padding by busy-waiting vs. scheduling an interim Hi
    thread — both close the channel; the interim thread recovers the
    padding time as useful work. *)

val e12_smt : ?seeds:int list -> ?pool:Tpro_engine.Pool.t -> unit -> Table.t
(** Sect. 4.1: sibling hyperthreads share core-private state
    concurrently; no OS mechanism helps — only separate physical cores
    (i.e. never scheduling two domains onto one core's hardware
    threads). *)

val e13_flush_reload : ?seeds:int list -> ?pool:Tpro_engine.Pool.t -> unit -> Table.t
(** Sect. 4.2: Flush+Reload through a shared user page — sharing defeats
    every OS defence; the fix is per-domain copies (the same reasoning
    that forces the kernel clone). *)

val e14_bandwidth : ?seeds:int list -> unit -> Table.t
(** End-to-end transmissions with a trained decoder: symbol error rate,
    cycles per symbol and achieved bandwidth per channel (the methodology
    of the empirical seL4 channel studies). *)

val e15_exhaustive : ?seeds:int list -> ?pool:Tpro_engine.Pool.t -> unit -> Table.t
(** Sect. 5: complete enumeration of every Hi program over a small
    alphabet — a universal, not sampled, noninterference statement. *)

val e16_mutual : ?seeds:int list -> unit -> Table.t
(** Sect. 2: three mutually distrusting domains; each secret varied in
    turn, no other domain may observe anything. *)

val e17_branch_predictor : ?seeds:int list -> ?pool:Tpro_engine.Pool.t -> unit -> Table.t
(** Sect. 3.1: the branch-predictor training channel — core-local
    flushable state, closed exactly by the flush. *)

val e18_overhead : ?seeds:int list -> unit -> Table.t
(** The cost side: workload completion time under full time protection
    vs. none, as a function of slice length — padding amortises with
    longer slices (the overhead shape of the EuroSys'19 evaluation). *)

val e19_side_channel : ?seeds:int list -> ?pool:Tpro_engine.Pool.t -> unit -> Table.t
(** Sect. 3.1: a *side* channel proper — the victim's program is fixed
    and the secret is data indexing a table; the spy recovers the index
    bits without any cooperation. *)

val e20_btb : ?seeds:int list -> ?pool:Tpro_engine.Pool.t -> unit -> Table.t
(** Sect. 5.1's extensibility claim, exercised: the branch target buffer
    exists in the machine only through the resource registry
    ([btb_entries]); its channel is closed by the switch flush because
    the kernel flushes whatever the registry lists as flushable. *)

val all : ?seeds:int list -> unit -> Table.t list
(** The whole suite, sequentially, in E-number order. *)

val all_par :
  ?seeds:int list ->
  ?pool:Tpro_engine.Pool.t ->
  ?domains:int ->
  unit ->
  Table.t list
(** The whole suite fanned out over a domain pool, two levels deep: the
    independent experiment tables run concurrently, and within each
    capacity table the (secret x seed) trial grid (and E15's exhaustive
    sweep) shares the same pool.  Every trial boots its own kernel, so
    the tables are bit-identical to {!all} — parallelism never changes a
    reported capacity.  Pass [?pool] to reuse a pool, else a transient
    one of [?domains] (default {!Tpro_engine.Pool.recommended}) is used. *)

val ids : string list

type sweep = {
  tables :
    (string * (Table.t, Tpro_engine.Supervisor.task_error) result) list;
      (** one entry per selected experiment, in E-number order; a table
          whose task failed (after retries) settles as [Error] instead
          of aborting the sweep *)
  sweep_resumed : int;  (** tables reused from the checkpoint *)
  sweep_notes : string list;  (** resume/restart decisions *)
}

val run_supervised :
  ?seeds:int list ->
  sup:Tpro_engine.Supervisor.t ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?only:string list ->
  unit ->
  sweep
(** The suite under supervision: each table is one supervised task
    (typed failure, bounded retry), and each capacity table's trial
    grid fans out over the supervisor's pool.  With [?checkpoint],
    every completed table is serialised into a crash-safe snapshot;
    with [~resume:true] those tables are reloaded and re-rendered
    byte-identically instead of recomputed.  A corrupt or mismatched
    checkpoint restarts the sweep from scratch with a note.  [?only]
    restricts the sweep to the given lowercase ids (for [tpro exp]). *)

val by_id :
  string ->
  (?seeds:int list -> ?pool:Tpro_engine.Pool.t -> unit -> Table.t) option
(** Experiments that have no trial grid ignore [?pool]. *)
