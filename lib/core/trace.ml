open Tpro_kernel

type segment = {
  core : int;
  start : int;
  finish : int;
  occupant : [ `Domain of int | `Switch of int * int ];
}

let timeline k =
  let switches_by_core = Hashtbl.create 4 in
  List.iter
    (fun e ->
      match e with
      | Event.Switch { core; from_dom; to_dom; slice_start; start; finish; _ }
        ->
        let prev =
          Option.value ~default:[] (Hashtbl.find_opt switches_by_core core)
        in
        Hashtbl.replace switches_by_core core
          ((from_dom, to_dom, slice_start, start, finish) :: prev)
      | _ -> ())
    (Kernel.events k);
  let segments = ref [] in
  Hashtbl.iter
    (fun core switches ->
      let switches = List.rev switches in
      List.iter
        (fun (from_dom, to_dom, slice_start, start, finish) ->
          if start > slice_start then
            segments :=
              { core; start = slice_start; finish = start;
                occupant = `Domain from_dom }
              :: !segments;
          segments :=
            { core; start; finish; occupant = `Switch (from_dom, to_dom) }
            :: !segments)
        switches)
    switches_by_core;
  List.sort
    (fun a b -> compare (a.start, a.core) (b.start, b.core))
    !segments

let utilisation k =
  let segs = timeline k in
  let total =
    List.fold_left (fun acc s -> acc + (s.finish - s.start)) 0 segs
  in
  if total = 0 then []
  else begin
    let per_dom = Hashtbl.create 8 in
    List.iter
      (fun s ->
        match s.occupant with
        | `Domain d ->
          let cur = Option.value ~default:0 (Hashtbl.find_opt per_dom d) in
          Hashtbl.replace per_dom d (cur + (s.finish - s.start))
        | `Switch _ -> ())
      segs;
    Hashtbl.fold
      (fun d cycles acc ->
        (d, float_of_int cycles /. float_of_int total) :: acc)
      per_dom []
    |> List.sort compare
  end

let pp ?(limit = 40) ppf k =
  let segs = timeline k in
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i s ->
      if i < limit then
        match s.occupant with
        | `Domain d ->
          Format.fprintf ppf "[core %d] %8d..%-8d domain %d runs (%d cycles)@,"
            s.core s.start s.finish d (s.finish - s.start)
        | `Switch (a, b) ->
          Format.fprintf ppf
            "[core %d] %8d..%-8d switch %d -> %d (%d cycles incl. padding)@,"
            s.core s.start s.finish a b (s.finish - s.start))
    segs;
  if List.length segs > limit then
    Format.fprintf ppf "... (%d more segments)@," (List.length segs - limit);
  List.iter
    (fun (d, u) ->
      Format.fprintf ppf "domain %d utilisation: %.1f%%@," d (100. *. u))
    (utilisation k);
  Format.fprintf ppf "@]"
