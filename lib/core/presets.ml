open Tpro_kernel

let none = Kernel.config_none
let full = Kernel.config_full

let flush_pad =
  { none with Kernel.flush_on_switch = true; pad_switch = true }

let colour_only = { none with Kernel.colouring = true }

let without_flush = { full with Kernel.flush_on_switch = false }
let without_pad = { full with Kernel.pad_switch = false }

let without_colouring =
  (* kernel cloning requires coloured memory, so it goes too *)
  { full with Kernel.colouring = false; kernel_clone = false }

let without_clone = { full with Kernel.kernel_clone = false }
let without_irq_partitioning = { full with Kernel.partition_irqs = false }

let without_deterministic_delivery =
  { full with Kernel.deterministic_delivery = false }

let known =
  [
    ("none", none);
    ("full", full);
    ("flush+pad", flush_pad);
    ("colour-only", colour_only);
    ("full\\flush", without_flush);
    ("full\\pad", without_pad);
    ("full\\colour", without_colouring);
    ("full\\clone", without_clone);
    ("full\\irq-part", without_irq_partitioning);
    ("full\\det-ipc", without_deterministic_delivery);
  ]

let by_name n = Option.map snd (List.find_opt (fun (n', _) -> n' = n) known)

let name cfg =
  match List.find_opt (fun (_, c) -> c = cfg) known with
  | Some (n, _) -> n
  | None -> Format.asprintf "%a" Kernel.pp_config cfg

let standard =
  [ ("none", none); ("flush+pad", flush_pad); ("colour-only", colour_only);
    ("full", full) ]

let ablations =
  [
    ("full", full);
    ("full\\flush", without_flush);
    ("full\\pad", without_pad);
    ("full\\colour", without_colouring);
    ("full\\clone", without_clone);
    ("full\\irq-part", without_irq_partitioning);
    ("full\\det-ipc", without_deterministic_delivery);
  ]
