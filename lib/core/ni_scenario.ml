open Tpro_hw
open Tpro_kernel
open Tpro_secmodel
open Tpro_channel

let slice = 30_000
let pad = 25_000

let hi_buf = 0x4000_0000
let lo_buf = 0x2000_0000

let default_secrets = [ 0; 1; 2; 3 ]
let default_seeds = [ 0; 1; 2 ]

(* A small 4-colour LLC so that Hi's working set can actually evict Lo's
   lines when colouring is off — with a large LLC the sampled programs
   would be too small to collide and the colouring obligation would be
   vacuous. *)
let machine_config_with ~with_btb ~seed =
  {
    Machine.default_config with
    Machine.llc_geom = Cache.geometry ~sets:256 ~ways:4 ~line_bits:6 ();
    n_frames = 512;
    btb_entries =
      (if with_btb then Some 64 else Machine.default_config.Machine.btb_entries);
    lat = Latency.with_seed Latency.default seed;
  }

let machine_config ~seed = machine_config_with ~with_btb:false ~seed

(* Lo's observer: one phase per slice-ish — clock read, timed probes over
   its own buffer, a couple of traps, branches, then fine-grained filler
   to carry it across the slice boundary. *)
let observer_phase i =
  Program.concat
    [
      [| Program.Read_clock |];
      Prime_probe.probe ~base:(lo_buf + (i * 256)) ~lines:24 ~line_size:64;
      [| Program.Syscall Program.Sys_null; Program.Read_clock |];
      Array.init 8 (fun b -> Program.Branch { tag = b; taken = b land 1 = 0 });
      [| Program.Syscall Program.Sys_info; Program.Read_clock |];
      Prime_probe.filler ~cycles:slice ~chunk:25;
    ]

let observer =
  Program.concat
    [ observer_phase 0; observer_phase 1; observer_phase 2; [| Program.Halt |] ]

(* Hi's secret-dependent behaviour, built to exercise every mechanism:
   - a device interrupt armed at a secret-dependent time (IRQ partitioning);
   - a secret-dependent *choice* of kernel path, so the kernel-text
     footprint differs between secrets (kernel clone);
   - a secret-scaled sweep over many pages, several lines deep, so the LLC
     (and L1/TLB) footprint differs (colouring / flushing);
   - a random program derived from the secret (everything else). *)
let hi_program ~secret =
  let call =
    if secret land 1 = 0 then Program.Sys_null else Program.Sys_info
  in
  let pages = 8 + (8 * (secret mod 4)) in
  let sweep =
    Array.concat
      (List.init pages (fun p ->
           Array.init 16 (fun l ->
               Program.Load (hi_buf + (p * 4096) + (l * 64)))))
  in
  Program.concat
    [
      [|
        Program.Syscall
          (Program.Sys_arm_irq { irq = 1; delay = 40_000 + (secret * 4_000) });
      |];
      Array.make 6 (Program.Syscall call);
      sweep;
      Program.random ~syscalls:false
        (Rng.create (0x5EC + secret))
        ~len:100 ~data_base:hi_buf ~data_bytes:(4 * 4096);
    ]

(* --- Record-parameterised scenario construction -------------------- *)

type domain_spec = {
  core : int option;
  n_colours : int option;
  slice : int;
  pad_cycles : int;
  regions : (int * int) list;
  programs : Program.t list;
  irqs : int list;
  observer : bool;
}

type spec = {
  machine : Machine.config;
  cfg : Kernel.config;
  n_endpoints : int option;
  n_irqs : int option;
  schedules : (int * int array) list;
  domains : domain_spec list;
  tweak : (Kernel.t -> unit) option;
}

let domain_spec ?core ?n_colours ?(regions = []) ?(programs = []) ?(irqs = [])
    ?(observer = false) ~slice ~pad_cycles () =
  { core; n_colours; slice; pad_cycles; regions; programs; irqs; observer }

let spec ?n_endpoints ?n_irqs ?(schedules = []) ?tweak ~machine ~cfg domains =
  { machine; cfg; n_endpoints; n_irqs; schedules; domains; tweak }

(* Build order is load-bearing for replay stability: domains are created
   first (colour and kernel-clone assignment follow creation order), then
   every region is mapped (frame allocation order), then IRQ owners and
   schedules are installed, then the [tweak] hook runs (while no thread
   exists yet), and only then are threads spawned domain-major.  The
   legacy two-domain builders below are thin specs, and produce
   bit-identical kernels to their historical hand-rolled bodies. *)
let build_spec s =
  let k =
    Kernel.create ~machine_config:s.machine ?n_endpoints:s.n_endpoints
      ?n_irqs:s.n_irqs s.cfg
  in
  let doms =
    List.map
      (fun d ->
        Kernel.create_domain k ?core:d.core ?n_colours:d.n_colours
          ~slice:d.slice ~pad_cycles:d.pad_cycles ())
      s.domains
  in
  List.iter2
    (fun ds dom ->
      List.iter
        (fun (vbase, pages) -> Kernel.map_region k dom ~vbase ~pages)
        ds.regions)
    s.domains doms;
  List.iter2
    (fun ds dom -> List.iter (fun irq -> Kernel.set_irq_owner k ~irq ~dom) ds.irqs)
    s.domains doms;
  List.iter
    (fun (core, order) ->
      match Kernel.set_schedule k ~core order with
      | Ok () -> ()
      | Error e ->
        invalid_arg ("Ni_scenario.build_spec: " ^ Sched.error_to_string e))
    s.schedules;
  (match s.tweak with Some f -> f k | None -> ());
  let observers =
    List.concat
      (List.map2
         (fun ds dom ->
           let ths = List.map (fun p -> Kernel.spawn k dom p) ds.programs in
           if ds.observer then ths else [])
         s.domains doms)
  in
  { Nonint.kernel = k; observers }

let build_with ~with_btb ~cfg ~seed ~secret =
  build_spec
    (spec ~machine:(machine_config_with ~with_btb ~seed) ~cfg
       [
         domain_spec ~slice ~pad_cycles:pad
           ~regions:[ (hi_buf, 32) ]
           ~programs:[ hi_program ~secret ]
           ~irqs:[ 1 ] ();
         domain_spec ~slice ~pad_cycles:pad
           ~regions:[ (lo_buf, 4) ]
           ~programs:[ observer ] ~observer:true ();
       ])

let build ~cfg ~seed ~secret = build_with ~with_btb:false ~cfg ~seed ~secret

let builder = build

(* Short observer for the exhaustive checker: one phase is enough, the
   point is to cover *every* Hi program, not every Lo behaviour. *)
let small_slice = 10_000
let small_pad = 12_000

let small_observer =
  Program.concat
    [
      [| Program.Read_clock |];
      Prime_probe.probe ~base:lo_buf ~lines:12 ~line_size:64;
      [| Program.Syscall Program.Sys_null; Program.Read_clock |];
      Prime_probe.filler ~cycles:small_slice ~chunk:25;
      [| Program.Read_clock; Program.Halt |];
    ]

let build_with_program_on ~with_btb ~cfg ~seed ~hi_prog =
  build_spec
    (spec ~machine:(machine_config_with ~with_btb ~seed) ~cfg
       [
         domain_spec ~slice:small_slice ~pad_cycles:small_pad
           ~regions:[ (hi_buf, 2) ]
           ~programs:[ hi_prog ] ();
         domain_spec ~slice:small_slice ~pad_cycles:small_pad
           ~regions:[ (lo_buf, 2) ]
           ~programs:[ small_observer ] ~observer:true ();
       ])

let build_with_program ~cfg ~seed ~hi_prog =
  build_with_program_on ~with_btb:false ~cfg ~seed ~hi_prog
