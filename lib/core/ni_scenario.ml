open Tpro_hw
open Tpro_kernel
open Tpro_secmodel
open Tpro_channel

let slice = 30_000
let pad = 25_000

let hi_buf = 0x4000_0000
let lo_buf = 0x2000_0000

let default_secrets = [ 0; 1; 2; 3 ]
let default_seeds = [ 0; 1; 2 ]

(* A small 4-colour LLC so that Hi's working set can actually evict Lo's
   lines when colouring is off — with a large LLC the sampled programs
   would be too small to collide and the colouring obligation would be
   vacuous. *)
let machine_config_with ~with_btb ~seed =
  {
    Machine.default_config with
    Machine.llc_geom = Cache.geometry ~sets:256 ~ways:4 ~line_bits:6 ();
    n_frames = 512;
    btb_entries =
      (if with_btb then Some 64 else Machine.default_config.Machine.btb_entries);
    lat = Latency.with_seed Latency.default seed;
  }

let machine_config ~seed = machine_config_with ~with_btb:false ~seed

(* Lo's observer: one phase per slice-ish — clock read, timed probes over
   its own buffer, a couple of traps, branches, then fine-grained filler
   to carry it across the slice boundary. *)
let observer_phase i =
  Program.concat
    [
      [| Program.Read_clock |];
      Prime_probe.probe ~base:(lo_buf + (i * 256)) ~lines:24 ~line_size:64;
      [| Program.Syscall Program.Sys_null; Program.Read_clock |];
      Array.init 8 (fun b -> Program.Branch { tag = b; taken = b land 1 = 0 });
      [| Program.Syscall Program.Sys_info; Program.Read_clock |];
      Prime_probe.filler ~cycles:slice ~chunk:25;
    ]

let observer =
  Program.concat
    [ observer_phase 0; observer_phase 1; observer_phase 2; [| Program.Halt |] ]

(* Hi's secret-dependent behaviour, built to exercise every mechanism:
   - a device interrupt armed at a secret-dependent time (IRQ partitioning);
   - a secret-dependent *choice* of kernel path, so the kernel-text
     footprint differs between secrets (kernel clone);
   - a secret-scaled sweep over many pages, several lines deep, so the LLC
     (and L1/TLB) footprint differs (colouring / flushing);
   - a random program derived from the secret (everything else). *)
let hi_program ~secret =
  let call =
    if secret land 1 = 0 then Program.Sys_null else Program.Sys_info
  in
  let pages = 8 + (8 * (secret mod 4)) in
  let sweep =
    Array.concat
      (List.init pages (fun p ->
           Array.init 16 (fun l ->
               Program.Load (hi_buf + (p * 4096) + (l * 64)))))
  in
  Program.concat
    [
      [|
        Program.Syscall
          (Program.Sys_arm_irq { irq = 1; delay = 40_000 + (secret * 4_000) });
      |];
      Array.make 6 (Program.Syscall call);
      sweep;
      Program.random ~syscalls:false
        (Rng.create (0x5EC + secret))
        ~len:100 ~data_base:hi_buf ~data_bytes:(4 * 4096);
    ]

let build_with ~with_btb ~cfg ~seed ~secret =
  let k =
    Kernel.create ~machine_config:(machine_config_with ~with_btb ~seed) cfg
  in
  let hi = Kernel.create_domain k ~slice ~pad_cycles:pad () in
  let lo = Kernel.create_domain k ~slice ~pad_cycles:pad () in
  Kernel.map_region k hi ~vbase:hi_buf ~pages:32;
  Kernel.map_region k lo ~vbase:lo_buf ~pages:4;
  Kernel.set_irq_owner k ~irq:1 ~dom:hi;
  ignore (Kernel.spawn k hi (hi_program ~secret));
  let lo_thread = Kernel.spawn k lo observer in
  { Nonint.kernel = k; observers = [ lo_thread ] }

let build ~cfg ~seed ~secret = build_with ~with_btb:false ~cfg ~seed ~secret

let builder = build

(* Short observer for the exhaustive checker: one phase is enough, the
   point is to cover *every* Hi program, not every Lo behaviour. *)
let small_slice = 10_000
let small_pad = 12_000

let small_observer =
  Program.concat
    [
      [| Program.Read_clock |];
      Prime_probe.probe ~base:lo_buf ~lines:12 ~line_size:64;
      [| Program.Syscall Program.Sys_null; Program.Read_clock |];
      Prime_probe.filler ~cycles:small_slice ~chunk:25;
      [| Program.Read_clock; Program.Halt |];
    ]

let build_with_program_on ~with_btb ~cfg ~seed ~hi_prog =
  let k =
    Kernel.create ~machine_config:(machine_config_with ~with_btb ~seed) cfg
  in
  let hi = Kernel.create_domain k ~slice:small_slice ~pad_cycles:small_pad () in
  let lo = Kernel.create_domain k ~slice:small_slice ~pad_cycles:small_pad () in
  Kernel.map_region k hi ~vbase:hi_buf ~pages:2;
  Kernel.map_region k lo ~vbase:lo_buf ~pages:2;
  ignore (Kernel.spawn k hi hi_prog);
  let lo_thread = Kernel.spawn k lo small_observer in
  { Nonint.kernel = k; observers = [ lo_thread ] }

let build_with_program ~cfg ~seed ~hi_prog =
  build_with_program_on ~with_btb:false ~cfg ~seed ~hi_prog
