(** Experiment result tables, rendered like the rows a paper would
    report. *)

type t = {
  id : string;       (** experiment id, e.g. "E2" *)
  title : string;
  anchor : string;   (** the paper section/figure the experiment backs *)
  headers : string list;
  rows : string list list;
  note : string;     (** expected shape / interpretation *)
}

val render : Format.formatter -> t -> unit

val to_string : t -> string

val to_csv : t -> string
(** Headers + rows as comma-separated values (cells containing commas or
    quotes are quoted). *)

val cell_float : float -> string
(** 3-decimal rendering used for capacities. *)

val serialise : t -> string
(** Checkpoint form: one escaped field per line.  Exact round-trip —
    [deserialise (serialise t) = Ok t] — so a campaign resumed from a
    checkpoint re-renders completed tables byte-identically. *)

val deserialise : string -> (t, string) result
