(** Multi-domain mutual noninterference.

    Sect. 2 of the paper: Hi and Lo are *relative to a particular
    secret*; there is no hierarchical policy, and "there may be other
    secrets for which the roles of the domains are reversed.  It is the
    duty of the OS to prevent any unauthorised information flow, no
    matter what the system's specific security policy might be."

    This scenario runs three mutually distrusting domains, each holding
    its own secret (a secret-driven worker thread) and its own observer
    thread.  The mutual-NI check varies one domain's secret at a time and
    requires every *other* domain's observations to be unchanged —
    intra-domain flows (a domain's own observer seeing its own worker)
    are legitimately unrestricted. *)

open Tpro_kernel
open Tpro_secmodel

val n_domains : int

val build :
  cfg:Kernel.config -> seed:int -> secrets:int array -> Kernel.t * Thread.t array
(** A booted three-domain system; returns each domain's observer
    thread. *)

val check :
  ?seeds:int list -> ?secret_values:int list -> cfg:Kernel.config -> unit ->
  Proofs.check
(** For every domain [d], every latency seed and every alternative value
    of [d]'s secret: the observations of all domains other than [d] must
    equal the baseline run's. *)
