type t = {
  id : string;
  title : string;
  anchor : string;
  headers : string list;
  rows : string list list;
  note : string;
}

let cell_float f = Printf.sprintf "%.3f" f

let render ppf t =
  let all = t.headers :: t.rows in
  let n_cols =
    List.fold_left (fun acc row -> max acc (List.length row)) 0 all
  in
  let widths = Array.make n_cols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let pad i s = s ^ String.make (widths.(i) - String.length s) ' ' in
  let print_row row =
    Format.fprintf ppf "  ";
    List.iteri (fun i c -> Format.fprintf ppf "%s  " (pad i c)) row;
    Format.fprintf ppf "@,"
  in
  let rule =
    String.concat "--" (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  Format.fprintf ppf "@[<v>%s: %s  (%s)@," t.id t.title t.anchor;
  print_row t.headers;
  Format.fprintf ppf "  %s@," rule;
  List.iter print_row t.rows;
  if t.note <> "" then Format.fprintf ppf "  note: %s@," t.note;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" render t

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let line row = String.concat "," (List.map csv_cell row) in
  String.concat "\n" (List.map line (t.headers :: t.rows)) ^ "\n"

(* Checkpoint serialisation: one escaped field per line, so a resumed
   campaign re-renders a completed table byte-identically to the run
   that computed it.  Cells are tab-joined, which the escaping makes
   unambiguous. *)

let esc = Tpro_engine.Checkpoint.escape

let serialise t =
  String.concat "\n"
    ([ "id " ^ esc t.id; "title " ^ esc t.title; "anchor " ^ esc t.anchor ]
    @ List.map (fun h -> "header " ^ esc h) t.headers
    (* cells are escaped individually, so the joining tabs are the only
       real tabs on the line *)
    @ List.map (fun r -> "row " ^ String.concat "\t" (List.map esc r)) t.rows
    @ [ "note " ^ esc t.note ])
  ^ "\n"

let deserialise str =
  let unesc line what =
    match Tpro_engine.Checkpoint.unescape line with
    | Some s -> Ok s
    | None -> Error ("malformed escape in " ^ what)
  in
  let rec go acc lines =
    match lines with
    | [] -> Ok acc
    | "" :: rest -> go acc rest
    | line :: rest -> (
      let k, v =
        match String.index_opt line ' ' with
        | Some i ->
          ( String.sub line 0 i,
            String.sub line (i + 1) (String.length line - i - 1) )
        | None -> (line, "")
      in
      if k = "row" then
        let cells = String.split_on_char '\t' v in
        let rec unesc_all acc = function
          | [] -> Ok (List.rev acc)
          | c :: rest -> (
            match unesc c "row cell" with
            | Ok c -> unesc_all (c :: acc) rest
            | Error _ as e -> e)
        in
        match unesc_all [] cells with
        | Error _ as e -> e
        | Ok cells -> go { acc with rows = acc.rows @ [ cells ] } rest
      else
        match unesc v k with
        | Error _ as e -> e
        | Ok v -> (
          match k with
          | "id" -> go { acc with id = v } rest
          | "title" -> go { acc with title = v } rest
          | "anchor" -> go { acc with anchor = v } rest
          | "header" -> go { acc with headers = acc.headers @ [ v ] } rest
          | "note" -> go { acc with note = v } rest
          | _ -> Error ("unknown table field: " ^ k)))
  in
  go { id = ""; title = ""; anchor = ""; headers = []; rows = []; note = "" }
    (String.split_on_char '\n' str)
