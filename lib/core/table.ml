type t = {
  id : string;
  title : string;
  anchor : string;
  headers : string list;
  rows : string list list;
  note : string;
}

let cell_float f = Printf.sprintf "%.3f" f

let render ppf t =
  let all = t.headers :: t.rows in
  let n_cols =
    List.fold_left (fun acc row -> max acc (List.length row)) 0 all
  in
  let widths = Array.make n_cols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let pad i s = s ^ String.make (widths.(i) - String.length s) ' ' in
  let print_row row =
    Format.fprintf ppf "  ";
    List.iteri (fun i c -> Format.fprintf ppf "%s  " (pad i c)) row;
    Format.fprintf ppf "@,"
  in
  let rule =
    String.concat "--" (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  Format.fprintf ppf "@[<v>%s: %s  (%s)@," t.id t.title t.anchor;
  print_row t.headers;
  Format.fprintf ppf "  %s@," rule;
  List.iter print_row t.rows;
  if t.note <> "" then Format.fprintf ppf "  note: %s@," t.note;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" render t

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let line row = String.concat "," (List.map csv_cell row) in
  String.concat "\n" (List.map line (t.headers :: t.rows)) ^ "\n"
